//! Determinism and fidelity contract of the flow-level engine: the
//! built-in `fig7-flow` sweep produces byte-identical JSON/CSV at any
//! thread count, across repeated runs, and — via the pinned golden —
//! across PRs; and on a fig7-class topology the flow engine's FCT
//! slowdowns track the packet engine's within a pinned band (the fluid
//! model has no queueing delay, CC ramp-up, or drops, so it sits
//! *below* the packet numbers but in the same regime).
//!
//! To regenerate the golden after an intentional flow-engine change
//! (bump `dcn_flow::FLOW_ENGINE_VERSION` too!):
//! `GOLDEN_REGEN=1 cargo test -p dcn-scenarios --test flow_determinism`.

// GOLDEN_REGEN is an env toggle; tests are R3-exempt in dcn-lint.
#![allow(clippy::disallowed_methods)]

use dcn_scenarios::{
    builtin, diff_reports, run_sweep, Algo, EngineKind, IncastSpec, ParamSpec, ScenarioSpec,
    SizeSpec, TopologySpec,
};

#[test]
fn fig7_flow_is_byte_identical_and_pinned() {
    let spec = builtin("fig7-flow").expect("builtin fig7-flow");
    let t1 = run_sweep(&spec, 1).expect("1 thread");
    let t4 = run_sweep(&spec, 4).expect("4 threads");
    let json = t1.to_json();
    assert_eq!(json, t4.to_json(), "JSON differs at 4 threads");
    assert_eq!(t1.to_csv(), t4.to_csv(), "CSV differs at 4 threads");
    let again = run_sweep(&spec, 4).expect("second run");
    assert_eq!(json, again.to_json(), "reruns must replay bit-for-bit");

    let path = format!(
        "{}/tests/fig7_flow_baseline.json",
        env!("CARGO_MANIFEST_DIR")
    );
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(&path, &json).expect("write golden");
    }
    let want = std::fs::read_to_string(&path)
        .expect("fig7-flow baseline missing; regenerate with GOLDEN_REGEN=1");
    assert_eq!(
        json, want,
        "fig7-flow drifted from the pinned baseline; if the flow engine \
         changed intentionally, bump dcn_flow::FLOW_ENGINE_VERSION and \
         regenerate with GOLDEN_REGEN=1"
    );
    let d = diff_reports(&json, &want, 0.0).expect("diffable");
    assert!(d.is_match(), "{:?}", d.differences);
}

/// A fig7-class scenario (websearch + incast on the tiny fat-tree)
/// small enough to run under both engines in seconds.
fn xcheck_spec() -> ScenarioSpec {
    ScenarioSpec::new(
        "xcheck",
        TopologySpec::FatTree {
            hosts_per_tor: 2,
            host_gbps: 25.0,
            fabric_gbps: 12.5,
        },
    )
    .poisson(SizeSpec::Websearch)
    .incast(IncastSpec {
        rate_per_sec: 800.0,
        request_bytes: 400_000,
        fan_in: 4,
        periodic: false,
    })
    .algos([Algo::PowerTcp, Algo::ThetaPowerTcp, Algo::Hpcc])
    .loads([0.4, 0.8])
    .seeds([42])
    .horizon_ms(2.0)
    .drain_ms(4.0)
}

#[test]
fn flow_slowdowns_track_the_packet_engine_within_the_pinned_band() {
    let packet = run_sweep(&xcheck_spec(), 4).expect("packet sweep");
    let flow = run_sweep(&xcheck_spec().engine(EngineKind::Flow), 4).expect("flow sweep");
    assert_eq!(packet.aggregates.len(), flow.aggregates.len());
    for (p, f) in packet.aggregates.iter().zip(flow.aggregates.iter()) {
        assert_eq!((p.algo_key.as_str(), p.load), (f.algo_key.as_str(), f.load));
        // Identical offered population: both engines draw the same flows
        // from the same workload generators.
        assert_eq!(p.offered, f.offered, "{} load {}", p.algo_key, p.load);
        // The idealized fluid never finishes later than the packet run.
        assert!(
            f.completed >= p.completed,
            "{} load {}: flow completed {} < packet {}",
            p.algo_key,
            p.load,
            f.completed,
            p.completed
        );
        // Pinned fidelity band: mean slowdown ratio (flow/packet). At
        // the pin date the observed ratios were 0.68–0.79 across the six
        // cells — the flow model omits queueing delay and CC ramp-up, so
        // it undershoots, but a working engine stays within 2x of the
        // packet truth and never dips below the no-faster-than-wire
        // floor of 1.0.
        let pm = p.all.expect("packet all-mean").mean;
        let fm = f.all.expect("flow all-mean").mean;
        assert!(fm >= 1.0, "{} load {}: mean {fm} < 1", p.algo_key, p.load);
        let ratio = fm / pm;
        assert!(
            (0.45..=1.15).contains(&ratio),
            "{} load {}: flow/packet mean-slowdown ratio {ratio:.3} \
             (flow {fm:.3}, packet {pm:.3}) left the pinned band [0.45, 1.15]",
            p.algo_key,
            p.load
        );
    }
}

#[test]
fn params_axis_rides_the_flow_engine_unchanged() {
    // The sweep params axis must expand, label, and execute under
    // engine = "flow" exactly like any other axis. The flow model is
    // CC-agnostic, so differently-parameterized cells report identical
    // physics under distinct report keys.
    let spec = xcheck_spec()
        .engine(EngineKind::Flow)
        .algos([Algo::PowerTcp])
        .loads([0.4])
        .params([
            ParamSpec {
                gamma: Some(0.5),
                ..ParamSpec::default()
            },
            ParamSpec {
                gamma: Some(0.9),
                ..ParamSpec::default()
            },
        ]);
    let r = run_sweep(&spec, 2).expect("flow sweep with params axis");
    assert_eq!(r.aggregates.len(), 2);
    assert_eq!(r.aggregates[0].algo_key, "powertcp[gamma=0.5]");
    assert_eq!(r.aggregates[1].algo_key, "powertcp[gamma=0.9]");
    assert_eq!(
        r.aggregates[0].all.map(|s| s.mean),
        r.aggregates[1].all.map(|s| s.mean),
        "flow physics ignores CC parameters"
    );
}
