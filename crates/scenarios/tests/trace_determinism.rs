//! Determinism contract of the trace engine: a timeseries scenario
//! produces byte-identical JSON/CSV regardless of worker thread count,
//! across repeated runs, and — via the pinned golden file — across PRs.
//!
//! To regenerate the golden after an intentional engine change:
//! `GOLDEN_REGEN=1 cargo test -p dcn-scenarios --test trace_determinism`.

// GOLDEN_REGEN is an env toggle; tests are R3-exempt in dcn-lint.
#![allow(clippy::disallowed_methods)]

use dcn_scenarios::{
    diff_reports, run_trace, trace_entries, Algo, ScenarioSpec, TraceScenario, TraceSpec,
};

/// A small two-entry fairness trace: big enough to exercise the full
/// sim + transport + probe path and entry-level parallelism, small enough
/// to run in well under a second.
fn golden_spec() -> ScenarioSpec {
    ScenarioSpec::timeseries(
        "golden-fairness",
        TraceSpec {
            scenario: TraceScenario::Fairness {
                flows: 2,
                stagger_ms: 0.5,
            },
            tick_us: 50.0,
            max_samples: 256,
            max_rows: 24,
            window: 1,
            channels: Vec::new(),
        },
    )
    .describe("pinned golden trace for cross-PR regression detection")
    .algos([Algo::PowerTcp, Algo::Hpcc])
    .horizon_ms(2.0)
}

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden_fairness_trace.json"
);

#[test]
fn golden_trace_is_byte_identical_at_any_thread_count() {
    let spec = golden_spec();
    assert_eq!(trace_entries(&spec).len(), 2);

    let t1 = run_trace(&spec, 1).expect("1 thread");
    let t4 = run_trace(&spec, 4).expect("4 threads");
    let json = t1.to_json();
    assert_eq!(json, t4.to_json(), "JSON differs at 4 threads");
    assert_eq!(t1.to_csv(), t4.to_csv(), "CSV differs at 4 threads");

    // Two consecutive runs replay bit-for-bit.
    let again = run_trace(&spec, 4).expect("second run");
    assert_eq!(json, again.to_json());

    // Cross-PR pin: the engine must reproduce the committed golden
    // byte-for-byte (regenerate deliberately with GOLDEN_REGEN=1).
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(GOLDEN_PATH, &json).expect("write golden");
    }
    let want = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing; regenerate with GOLDEN_REGEN=1");
    assert_eq!(
        json, want,
        "trace output drifted from the pinned golden; if intentional, \
         regenerate with GOLDEN_REGEN=1 and commit"
    );

    // The same comparison through `xp diff` machinery: zero tolerance.
    let d = diff_reports(&json, &want, 0.0).expect("diffable");
    assert!(d.is_match(), "{:?}", d.differences);
}

#[test]
fn trace_entries_vary_by_algorithm_not_by_schedule() {
    // Guard against a degenerate "deterministic because constant" engine:
    // different algorithms must actually produce different traces.
    let spec = golden_spec();
    let r = run_trace(&spec, 2).expect("trace");
    assert_eq!(r.entries.len(), 2);
    let a = &r.entries[0];
    let b = &r.entries[1];
    assert_ne!(a.label, b.label);
    assert_ne!(
        a.channel("cwnd-1").unwrap().samples,
        b.channel("cwnd-1").unwrap().samples,
        "PowerTCP and HPCC cwnd traces should differ"
    );
    // The power probe fires only for the power-based algorithm.
    assert!(!a.channel("power-1").unwrap().samples.is_empty());
    assert!(b.channel("power-1").unwrap().samples.is_empty());
}

#[test]
fn builtin_fig2_trace_is_stable() {
    // The analytic response scenario is pure computation: two runs are
    // identical and the blind-spot stats match the paper's annotations.
    let spec = dcn_scenarios::builtin("fig2").expect("builtin fig2");
    let a = run_trace(&spec, 1).expect("first");
    let b = run_trace(&spec, 3).expect("second");
    assert_eq!(a.to_json(), b.to_json());
    assert!(a.to_json().contains("\"case1_voltage_md\": 3.24"));
}
