//! Determinism contract of the analytic engine: the built-in `fig3` and
//! `ablations` fluid-model scenarios produce byte-identical JSON/CSV
//! regardless of worker thread count, across repeated runs, and — via
//! the pinned golden files — across PRs (`dcn-runner` extends the same
//! pin to `--procs` sharding and cache states).
//!
//! To regenerate the goldens after an intentional fluid-model change
//! (bump `fluid_model::MODEL_VERSION` too!):
//! `GOLDEN_REGEN=1 cargo test -p dcn-scenarios --test analytic_determinism`.

// GOLDEN_REGEN is an env toggle; tests are R3-exempt in dcn-lint.
#![allow(clippy::disallowed_methods)]

use dcn_scenarios::{builtin, diff_reports, run_trace};

fn baseline_path(name: &str) -> String {
    format!(
        "{}/tests/{}_baseline.json",
        env!("CARGO_MANIFEST_DIR"),
        name
    )
}

fn check_pinned(name: &str) {
    let spec = builtin(name).unwrap_or_else(|| panic!("builtin {name}"));
    let t1 = run_trace(&spec, 1).expect("1 thread");
    let t4 = run_trace(&spec, 4).expect("4 threads");
    let json = t1.to_json();
    assert_eq!(json, t4.to_json(), "{name}: JSON differs at 4 threads");
    assert_eq!(t1.to_csv(), t4.to_csv(), "{name}: CSV differs at 4 threads");
    let again = run_trace(&spec, 4).expect("second run");
    assert_eq!(json, again.to_json(), "{name}: reruns must replay");

    let path = baseline_path(name);
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(&path, &json).expect("write golden");
    }
    let want = std::fs::read_to_string(&path)
        .expect("analytic baseline missing; regenerate with GOLDEN_REGEN=1");
    assert_eq!(
        json, want,
        "{name} drifted from the pinned baseline; if the fluid model \
         changed intentionally, bump fluid_model::MODEL_VERSION and \
         regenerate with GOLDEN_REGEN=1"
    );
    let d = diff_reports(&json, &want, 0.0).expect("diffable");
    assert!(d.is_match(), "{:?}", d.differences);
}

#[test]
fn fig3_is_byte_identical_and_pinned() {
    check_pinned("fig3");
}

#[test]
fn ablations_is_byte_identical_and_pinned() {
    check_pinned("ablations");
}

#[test]
fn analytic_entries_differ_across_grid_points() {
    // Guard against a degenerate "deterministic because constant"
    // engine: different laws and different swept values must actually
    // produce different numbers.
    let fig3 = builtin("fig3").unwrap();
    let r = run_trace(&fig3, 2).expect("fig3");
    assert_eq!(r.entries.len(), 3);
    let spread = |i: usize| r.entries[i].stat("endpoint_spread_bytes").unwrap();
    assert_ne!(spread(0), spread(1), "laws must separate");
    let ab = run_trace(&builtin("ablations").unwrap(), 2).expect("ablations");
    let taus: Vec<f64> = ab
        .entries
        .iter()
        .filter_map(|e| e.stat("fitted_tau_us"))
        .collect();
    assert!(
        taus.windows(2).any(|w| w[0] != w[1]),
        "gammas must separate"
    );
}

#[test]
fn theorems_pass_through_the_executor() {
    let r = run_trace(&builtin("theorems").unwrap(), 3).expect("theorems");
    assert_eq!(r.entries.len(), 3);
    for e in &r.entries {
        assert_eq!(e.stat("pass"), Some(1.0), "{} failed", e.label);
    }
}
