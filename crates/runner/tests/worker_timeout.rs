//! `--timeout-secs`: a hung `--procs` worker is killed at its wall-clock
//! budget and the run falls back in-process with the usual `shard K/N`
//! context note — and the fallback's report bytes are identical to a
//! plain run, so the watchdog can never move a result.

#![cfg(unix)]

use dcn_runner::{run, RunConfig};
use dcn_scenarios::builtin;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xp-timeout-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A stand-in worker that hangs forever: reads nothing, writes nothing,
/// sleeps past any test budget. `exec` so the kill signal lands on the
/// sleep itself — no orphan lingers holding inherited pipes open.
fn hung_worker(dir: &std::path::Path) -> PathBuf {
    use std::os::unix::fs::PermissionsExt;
    let path = dir.join("hung-worker.sh");
    std::fs::write(&path, "#!/bin/sh\nexec sleep 600\n").unwrap();
    std::fs::set_permissions(&path, std::fs::Permissions::from_mode(0o755)).unwrap();
    path
}

#[test]
fn hung_workers_are_killed_and_fall_back_in_process() {
    let dir = scratch("hang");
    let spec = builtin("fig6-small").unwrap();
    let cfg = RunConfig {
        procs: 2,
        timeout_secs: Some(1),
        worker_exe: Some(hung_worker(&dir)),
        ..RunConfig::default()
    };
    let (out, stats) = run(&spec, &cfg).expect("watchdog falls back, run still succeeds");

    // The fallback note carries the kill reason with shard context.
    let note = stats.fallback.expect("fallback must be reported");
    assert!(note.contains("timed out"), "note: {note}");
    assert!(note.contains("shard"), "note: {note}");
    assert!(note.contains("points"), "note: {note}");

    // The fallback produced the full result, byte-identical to a plain
    // in-process run.
    assert_eq!(stats.spans.len(), stats.points);
    let (plain, _) = run(&spec, &RunConfig::default()).unwrap();
    assert_eq!(out.to_json(), plain.to_json());
    assert_eq!(out.to_csv(), plain.to_csv());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without a timeout nothing changes: real workers finish and the
/// watchdog never fires; with a generous timeout real workers also
/// finish — the budget only bites on genuinely hung processes.
#[test]
fn generous_timeouts_do_not_disturb_healthy_workers() {
    let spec = builtin("fig6-small").unwrap();
    let cfg = RunConfig {
        procs: 2,
        timeout_secs: Some(300),
        worker_exe: Some(PathBuf::from(env!("CARGO_BIN_EXE_xp"))),
        ..RunConfig::default()
    };
    let (out, stats) = run(&spec, &cfg).expect("healthy workers complete");
    assert!(
        stats.fallback.is_none(),
        "no fallback expected: {:?}",
        stats.fallback
    );
    assert_eq!(stats.procs, 2);
    let (plain, _) = run(&spec, &RunConfig::default()).unwrap();
    assert_eq!(out.to_json(), plain.to_json());
}
