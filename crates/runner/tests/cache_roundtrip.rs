//! Cache round-trip property: for a grid of scenarios, a cold run
//! followed by a warm run is byte-identical in JSON and CSV with 100%
//! hits, and corrupting any cache entry is detected (the point silently
//! recomputes, output still byte-identical).

use dcn_runner::{run, RunConfig};
use dcn_scenarios::{builtin, ScenarioOutput};
use std::fs;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xp-cachert-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn render(out: &ScenarioOutput) -> (String, String) {
    (out.to_json(), out.to_csv())
}

/// The property, checked per scenario: cold == warm == uncached, with
/// exact hit/miss accounting.
fn check_cold_warm(name: &str) {
    let spec = builtin(name).unwrap();
    let dir = scratch(name);
    let cached = RunConfig {
        threads: 2,
        cache_dir: Some(dir.clone()),
        ..RunConfig::default()
    };
    let (plain, _) = run(
        &spec,
        &RunConfig {
            threads: 2,
            ..RunConfig::default()
        },
    )
    .unwrap();
    let (cold, cold_stats) = run(&spec, &cached).unwrap();
    let (warm, warm_stats) = run(&spec, &cached).unwrap();
    let n = spec.num_points() as u64;
    assert_eq!(
        (cold_stats.cache_hits, cold_stats.cache_misses),
        (0, n),
        "{name} cold"
    );
    assert_eq!(
        (warm_stats.cache_hits, warm_stats.cache_misses),
        (n, 0),
        "{name} warm"
    );
    assert_eq!(
        render(&plain),
        render(&cold),
        "{name}: caching changed bytes"
    );
    assert_eq!(
        render(&cold),
        render(&warm),
        "{name}: warm run changed bytes"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn cold_then_warm_is_byte_identical_across_scenario_kinds() {
    // One fat-tree sweep, one star incast sweep, one analytic trace, one
    // simulated trace, one fluid-model analytic grid, one theorem check,
    // one params-axis sweep: every executor path.
    for name in [
        "fig6-small",
        "fig9to11",
        "fig2",
        "fig5",
        "fig3-small",
        "theorems",
        "gamma-sweep",
    ] {
        check_cold_warm(name);
    }
}

#[test]
fn analytic_keys_invalidate_on_fluid_physics_not_identity() {
    use dcn_runner::entry_key;
    use dcn_scenarios::{trace_entries, ScenarioKind};

    let spec = builtin("fig3-small").unwrap();
    let entries = trace_entries(&spec);
    let base: Vec<_> = entries.iter().map(|e| entry_key(&spec, e)).collect();

    // The salt is the fluid-model version, not the sim engine version:
    // analytic outcomes never touch the simulator, so simulator hot-path
    // PRs must leave the analytic cache warm (and fluid-model PRs must
    // invalidate it).
    for k in &base {
        assert!(
            k.canon.contains(&format!(
                "fluid-model-version={}",
                fluid_model::MODEL_VERSION
            )),
            "{}",
            k.canon
        );
        assert!(!k.canon.contains("engine-version="), "{}", k.canon);
        assert!(k.canon.contains("kind=analytic"), "{}", k.canon);
    }

    // Renaming / re-describing the scenario moves no key.
    let mut renamed = spec.clone().describe("different words");
    renamed.name = "fig3-small-renamed".into();
    for (e, k) in entries.iter().zip(&base) {
        assert_eq!(entry_key(&renamed, e), *k, "identity must not move keys");
    }

    // Changing any fluid parameter moves every key.
    let mut tuned = spec.clone();
    let ScenarioKind::Analytic(a) = &mut tuned.kind else {
        panic!("fig3-small is analytic");
    };
    a.gamma = 0.8;
    for (e, k) in entries.iter().zip(&base) {
        assert_ne!(entry_key(&tuned, e), *k, "fluid physics must move keys");
    }
    let mut wider = spec.clone();
    let ScenarioKind::Analytic(a) = &mut wider.kind else {
        panic!()
    };
    a.bandwidth_gbps = 400.0;
    for (e, k) in entries.iter().zip(&base) {
        assert_ne!(entry_key(&wider, e), *k);
    }

    // And a warm cache stays warm across the rename but not the retune.
    let dir = scratch("analytic-invalidate");
    let cfg = RunConfig {
        cache_dir: Some(dir.clone()),
        ..RunConfig::default()
    };
    let (_, s1) = run(&spec, &cfg).unwrap();
    assert_eq!(s1.cache_misses, entries.len() as u64);
    let (_, s2) = run(&renamed, &cfg).unwrap();
    assert_eq!(s2.cache_hits, entries.len() as u64, "rename must hit");
    let (_, s3) = run(&tuned, &cfg).unwrap();
    assert_eq!(s3.cache_misses, entries.len() as u64, "retune must miss");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entries_are_detected_and_recomputed() {
    let spec = builtin("fig6-small").unwrap();
    let dir = scratch("corrupt");
    let cfg = RunConfig {
        threads: 2,
        cache_dir: Some(dir.clone()),
        ..RunConfig::default()
    };
    let (cold, _) = run(&spec, &cfg).unwrap();

    // Corrupt every entry a different way: truncation, bit flips in the
    // payload, full garbage.
    let mut entries: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    assert_eq!(entries.len(), spec.num_points());
    let text = fs::read_to_string(&entries[0]).unwrap();
    fs::write(&entries[0], &text[..text.len() / 3]).unwrap();
    fs::write(
        &entries[1],
        "{\"format\": 1, \"canon\": \"junk\", \"payload\": {}}",
    )
    .unwrap();

    let (redone, stats) = run(&spec, &cfg).unwrap();
    assert_eq!(stats.cache_hits, 0, "all entries were corrupted");
    assert_eq!(stats.cache_misses, spec.num_points() as u64);
    assert_eq!(cold.to_json(), redone.to_json());
    assert_eq!(cold.to_csv(), redone.to_csv());

    // The recompute healed the cache.
    let (healed, stats) = run(&spec, &cfg).unwrap();
    assert_eq!(stats.cache_hits, spec.num_points() as u64);
    assert_eq!(cold.to_json(), healed.to_json());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn editing_the_spec_physics_invalidates_while_identity_does_not() {
    let dir = scratch("invalidate");
    let cfg = RunConfig {
        threads: 2,
        cache_dir: Some(dir.clone()),
        ..RunConfig::default()
    };
    let spec = builtin("fig6-small").unwrap();
    let (_, s1) = run(&spec, &cfg).unwrap();
    assert_eq!(s1.cache_misses, 2);

    // Renaming/redescribing is identity, not physics: still 100% hits.
    let mut renamed = spec.clone().describe("renamed");
    renamed.name = "fig6-small-renamed".into();
    let (_, s2) = run(&renamed, &cfg).unwrap();
    assert_eq!((s2.cache_hits, s2.cache_misses), (2, 0));

    // Changing the horizon is physics: full miss.
    let hotter = spec.clone().horizon_ms(spec.horizon_ms + 1.0);
    let (_, s3) = run(&hotter, &cfg).unwrap();
    assert_eq!(s3.cache_hits, 0);
    let _ = fs::remove_dir_all(&dir);
}
