//! End-to-end tests of the `xp serve` daemon: the server is bound on an
//! ephemeral port and driven over real TCP with the repo's own
//! `dcn_serve::client` helper — submit, poll, stream events, download
//! reports, and drain a graceful shutdown.
//!
//! The load-bearing assertion is the reports-never-differ invariant: a
//! `report.json` fetched from the daemon is **byte-identical** to the
//! committed `fig6-small` baseline (the same bytes `xp run --json`
//! writes), cold cache and warm.

use dcn_scenarios::diff::{parse_json, Json};
use dcn_scenarios::{builtin, diff_reports};
use dcn_serve::client;
use dcn_serve::{ServeConfig, Server};
use std::path::PathBuf;
use std::time::Duration;

/// The committed cross-PR baseline: exactly `xp run fig6-small --json`.
const BASELINE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../scenarios/tests/fig6_small_baseline.json"
);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xp-serve-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Bind a daemon on an ephemeral port with the production runner glue;
/// returns its address, a shutdown handle, and the serve-loop thread.
fn start_daemon(
    cache_dir: Option<PathBuf>,
    workers: usize,
) -> (
    String,
    dcn_serve::server::ShutdownHandle,
    std::thread::JoinHandle<Result<(), String>>,
) {
    let cfg = ServeConfig {
        workers,
        queue_cap: 16,
        run: dcn_runner::serve_run_fn(cache_dir.clone(), 2),
        cache_stat: cache_dir.map(dcn_runner::serve_stat_fn),
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = server.shutdown_handle();
    let join = std::thread::spawn(move || server.serve());
    (addr, handle, join)
}

/// Poll `GET /jobs/<id>` until the job is terminal. The ~2-minute
/// budget is counted in poll attempts, not wall clock (no clock reads —
/// lint rule R2 applies to tests too).
fn wait_done(addr: &str, id: u64) -> String {
    let mut last = String::new();
    for _ in 0..2400 {
        let status = client::get(addr, &format!("/jobs/{id}")).expect("poll status");
        assert_eq!(status.status, 200);
        last = status.text();
        if last.contains("\"state\":\"done\"") || last.contains("\"state\":\"failed\"") {
            return last;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("job {id} never finished: {last}");
}

fn field<'a>(obj: &'a [(String, Json)], key: &str) -> &'a Json {
    &obj.iter().find(|(k, _)| k == key).expect(key).1
}

#[test]
fn served_reports_match_committed_baseline_cold_and_warm() {
    let cache = scratch("bytes");
    let (addr, shutdown, join) = start_daemon(Some(cache.clone()), 1);
    let spec_toml = builtin("fig6-small").unwrap().to_toml();
    let baseline = std::fs::read_to_string(BASELINE).expect("committed fig6-small baseline");

    // Two identical submissions through one worker: the first computes
    // cold, the second must be served entirely from the shared cache.
    let first = client::post(&addr, "/jobs", spec_toml.as_bytes()).expect("submit cold");
    assert_eq!(first.status, 201, "{}", first.text());
    assert!(
        first.text().contains("\"record\":\"job\""),
        "{}",
        first.text()
    );
    let second = client::post(&addr, "/jobs", spec_toml.as_bytes()).expect("submit warm");
    assert_eq!(second.status, 201, "{}", second.text());

    for id in [1u64, 2] {
        let status = wait_done(&addr, id);
        assert!(status.contains("\"state\":\"done\""), "job {id}: {status}");

        // The invariant: served bytes == committed baseline, exactly.
        let report = client::get(&addr, &format!("/jobs/{id}/report.json")).unwrap();
        assert_eq!(report.status, 200);
        assert_eq!(
            report.text(),
            baseline,
            "job {id} report.json must be byte-identical to the committed baseline"
        );
        // Belt and braces: the repo's own differ at zero tolerance.
        let d = diff_reports(&report.text(), &baseline, 0.0).expect("diffable");
        assert!(d.is_match(), "{:?}", d.differences);

        let csv = client::get(&addr, &format!("/jobs/{id}/report.csv")).unwrap();
        assert_eq!(csv.status, 200);
        assert!(csv.text().lines().count() > 1, "CSV has header + rows");
    }

    // Event streams: well-formed NDJSON, spans then exactly one summary;
    // job 1 all misses (cold), job 2 all hits (concurrent-submission
    // dedup through the shared cache).
    for (id, disposition) in [(1u64, "miss"), (2, "hit")] {
        let events = client::get(&addr, &format!("/jobs/{id}/events")).unwrap();
        assert_eq!(events.status, 200);
        let text = events.text();
        let lines: Vec<&str> = text.lines().map(str::trim).collect();
        let points = builtin("fig6-small").unwrap().num_points();
        assert_eq!(lines.len(), points + 1, "spans + summary: {lines:#?}");
        for span_line in &lines[..points] {
            let Json::Obj(obj) = parse_json(span_line).expect("span parses") else {
                panic!("span line must be an object: {span_line}");
            };
            assert_eq!(field(&obj, "record"), &Json::Str("span".into()));
            assert_eq!(
                field(&obj, "cache"),
                &Json::Str(disposition.into()),
                "job {id}: {span_line}"
            );
        }
        let Json::Obj(sum) = parse_json(lines[points]).expect("summary parses") else {
            panic!("summary line must be an object");
        };
        assert_eq!(field(&sum, "record"), &Json::Str("summary".into()));
        assert_eq!(field(&sum, "points"), &Json::Int(points as i128));
        let cached = match field(&sum, "cached") {
            Json::Int(n) => *n as usize,
            other => panic!("cached must be an integer, got {other:?}"),
        };
        assert_eq!(cached, if id == 1 { 0 } else { points });
    }

    // The job list is one NDJSON record per job; the cache endpoint
    // serves the per-engine stat record.
    let list = client::get(&addr, "/jobs").unwrap();
    assert_eq!(list.text().lines().count(), 2);
    let stat = client::get(&addr, "/cache").unwrap();
    assert_eq!(stat.status, 200);
    assert!(
        stat.text().contains("\"record\":\"cache\""),
        "{}",
        stat.text()
    );

    // Dashboards render from the same data.
    let dash = client::get(&addr, "/").unwrap();
    assert_eq!(dash.status, 200);
    assert!(dash.text().contains("fig6-small"));
    let page = client::get(&addr, "/jobs/1/html").unwrap();
    assert!(page.text().contains("report.json"), "{}", page.text());

    shutdown.shutdown();
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn malformed_and_missing_requests_get_4xx() {
    let (addr, shutdown, join) = start_daemon(None, 1);

    // Malformed spec body → 400 with a diagnostic.
    let bad = client::post(&addr, "/jobs", b"this is not = [valid [toml").unwrap();
    assert_eq!(bad.status, 400, "{}", bad.text());
    assert!(bad.text().contains("\"error\""), "{}", bad.text());

    // A spec that parses but validates empty is also a 400.
    let empty = client::post(&addr, "/jobs", b"name = \"x\"\n").unwrap();
    assert_eq!(empty.status, 400, "{}", empty.text());

    // Unknown job, unknown route, wrong method.
    assert_eq!(client::get(&addr, "/jobs/99").unwrap().status, 404);
    assert_eq!(client::get(&addr, "/no/such/thing").unwrap().status, 404);
    assert_eq!(client::post(&addr, "/jobs/1", b"x").unwrap().status, 405);
    assert_eq!(client::get(&addr, "/shutdown").unwrap().status, 405);

    // Report for a job that never existed.
    assert_eq!(
        client::get(&addr, "/jobs/7/report.json").unwrap().status,
        404
    );

    // No cache configured → /cache is a 404.
    assert_eq!(client::get(&addr, "/cache").unwrap().status, 404);

    shutdown.shutdown();
    join.join().unwrap().unwrap();
}

/// `ScenarioSpec::from_toml` validates, so a spec that would fail at
/// execution is refused at submission — the daemon never queues a job
/// doomed by its spec (runtime failure capture is covered by the
/// `dcn-serve` job lifecycle unit tests).
#[test]
fn invalid_specs_are_rejected_at_submission() {
    let (addr, shutdown, join) = start_daemon(None, 1);
    let good = builtin("fig6-small").unwrap().to_toml();

    // Unknown key → parse error → 400.
    let unknown_key = good.replace("horizon_ms", "horizon_zz");
    let resp = client::post(&addr, "/jobs", unknown_key.as_bytes()).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());

    // Parses but fails validation (negative horizon) → 400 too.
    let bad_value = good.replace("horizon_ms = ", "horizon_ms = -");
    let resp = client::post(&addr, "/jobs", bad_value.as_bytes()).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.text());
    assert!(resp.text().contains("horizon"), "{}", resp.text());

    shutdown.shutdown();
    join.join().unwrap().unwrap();
}

#[test]
fn shutdown_drains_queued_jobs() {
    let cache = scratch("drain");
    let (addr, shutdown, join) = start_daemon(Some(cache.clone()), 1);
    let spec_toml = builtin("fig6-small").unwrap().to_toml();
    // Three jobs through one worker: at least two still queued when the
    // shutdown lands; all three must complete before serve() returns.
    for _ in 0..3 {
        let resp = client::post(&addr, "/jobs", spec_toml.as_bytes()).unwrap();
        assert_eq!(resp.status, 201, "{}", resp.text());
    }
    shutdown.shutdown();
    join.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&cache);
}

/// The CLI wiring: `xp serve --addr 127.0.0.1:0` announces its bound
/// address on stderr (a `# `-prefixed note), serves a job, and drains on
/// `POST /shutdown`.
#[test]
fn xp_serve_cli_round_trip() {
    use std::io::{BufRead, BufReader};
    use std::process::{Command, Stdio};

    let cache = scratch("cli");
    let mut child = Command::new(env!("CARGO_BIN_EXE_xp"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "1",
            "--cache-dir",
            cache.to_str().unwrap(),
        ])
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn xp serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let first = lines.next().expect("announce line").expect("readable");
    assert!(first.starts_with("# "), "stderr is the note path: {first}");
    let addr = first
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .expect("announce line carries the bound address")
        .to_string();

    let spec_toml = builtin("fig6-small").unwrap().to_toml();
    let resp = client::post(&addr, "/jobs", spec_toml.as_bytes()).unwrap();
    assert_eq!(resp.status, 201, "{}", resp.text());
    wait_done(&addr, 1);
    let report = client::get(&addr, "/jobs/1/report.json").unwrap();
    let baseline = std::fs::read_to_string(BASELINE).unwrap();
    assert_eq!(report.text(), baseline, "CLI daemon serves the same bytes");

    let down = client::post(&addr, "/shutdown", b"").unwrap();
    assert_eq!(down.status, 200);
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "graceful shutdown exits 0");
    let _ = std::fs::remove_dir_all(&cache);
}
