//! CLI output contracts, driven through the real `xp` binary:
//!
//! * `xp show` stdout is clean, pipeable TOML — byte-identical to
//!   `ScenarioSpec::to_toml()`, round-trippable through `from_toml`,
//!   with every human annotation on stderr as a `# `-prefixed note;
//! * `xp cache stat --json` emits one NDJSON record in the span-record
//!   grammar family (entries, bytes, per-engine counts) while the human
//!   text rendering stays unchanged.

use dcn_scenarios::diff::{parse_json, Json};
use dcn_scenarios::{builtin, ScenarioSpec};
use std::path::PathBuf;
use std::process::Command;

const XP: &str = env!("CARGO_BIN_EXE_xp");

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xp-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn show_stdout_is_clean_toml_and_notes_go_to_stderr() {
    for name in ["fig6-small", "fig7-flow", "fig2"] {
        let out = Command::new(XP).args(["show", name]).output().unwrap();
        assert!(out.status.success(), "xp show {name} failed");
        let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
        let stderr = String::from_utf8(out.stderr).expect("stderr is UTF-8");

        // stdout: exactly the spec's TOML rendering, nothing else.
        let want = builtin(name).expect("builtin").to_toml();
        assert_eq!(stdout, want, "xp show {name} stdout must be the TOML alone");
        let parsed = ScenarioSpec::from_toml(&stdout).expect("stdout round-trips");
        assert_eq!(parsed, builtin(name).unwrap());

        // stderr: every line is a `# `-prefixed human note.
        assert!(!stderr.is_empty(), "the engine note belongs on stderr");
        for line in stderr.lines() {
            assert!(line.starts_with("# "), "stray stderr line: {line:?}");
        }
    }
}

#[test]
fn show_unknown_scenario_notes_stderr_and_fails() {
    let out = Command::new(XP).args(["show", "no-such"]).output().unwrap();
    assert!(!out.status.success());
    assert!(out.stdout.is_empty(), "errors must not pollute stdout");
    let stderr = String::from_utf8(out.stderr).unwrap();
    for line in stderr.lines() {
        assert!(line.starts_with("# "), "stray stderr line: {line:?}");
    }
    assert!(stderr.contains("no-such"));
}

fn field<'a>(obj: &'a [(String, Json)], key: &str) -> &'a Json {
    &obj.iter().find(|(k, _)| k == key).expect(key).1
}

fn int(obj: &[(String, Json)], key: &str) -> i128 {
    match field(obj, key) {
        Json::Int(i) => *i,
        other => panic!("{key} must be an integer, got {other:?}"),
    }
}

#[test]
fn cache_stat_json_is_one_record_with_per_engine_counts() {
    let dir = scratch("stat-json");
    let cache = dir.join("cache");
    let cache_arg = cache.to_str().unwrap();

    // Empty cache: a well-formed all-zero record.
    let out = Command::new(XP)
        .args(["cache", "stat", "--json", "--cache-dir", cache_arg])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert_eq!(text.lines().count(), 1, "exactly one NDJSON record");
    let Json::Obj(obj) = parse_json(text.trim()).expect("record parses") else {
        panic!("record must be an object: {text}");
    };
    assert_eq!(field(&obj, "record"), &Json::Str("cache".into()));
    assert_eq!(int(&obj, "entries"), 0);
    assert_eq!(int(&obj, "bytes"), 0);

    // Populate with a packet-engine sweep and a flow-engine sweep, then
    // re-stat: entries split by engine salt.
    for spec in ["fig6-small", "fig7-flow"] {
        let run = Command::new(XP)
            .args(["run", spec, "--cache-dir", cache_arg])
            .output()
            .unwrap();
        assert!(
            run.status.success(),
            "{}",
            String::from_utf8_lossy(&run.stderr)
        );
    }
    let packet_points = builtin("fig6-small").unwrap().num_points() as i128;
    let flow_points = builtin("fig7-flow").unwrap().num_points() as i128;
    let out = Command::new(XP)
        .args(["cache", "stat", "--json", "--cache-dir", cache_arg])
        .output()
        .unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    let Json::Obj(obj) = parse_json(text.trim()).expect("record parses") else {
        panic!("record must be an object: {text}");
    };
    assert_eq!(int(&obj, "entries"), packet_points + flow_points);
    assert_eq!(int(&obj, "packet"), packet_points);
    assert_eq!(int(&obj, "flow"), flow_points);
    assert_eq!(int(&obj, "analytic"), 0);
    assert_eq!(int(&obj, "other"), 0);
    assert!(int(&obj, "bytes") > 0);

    // The human rendering is unchanged by the new flag's existence.
    let human = Command::new(XP)
        .args(["cache", "stat", "--cache-dir", cache_arg])
        .output()
        .unwrap();
    let human_text = String::from_utf8(human.stdout).unwrap();
    assert!(
        human_text.contains(&format!("{} entries", packet_points + flow_points)),
        "{human_text}"
    );
    assert!(human_text.contains("bytes"), "{human_text}");
    assert!(!human_text.contains("record"), "{human_text}");

    let _ = std::fs::remove_dir_all(&dir);
}
