//! Determinism contract of the multi-process runner, driven through the
//! real `xp` binary: `--procs N` output is byte-identical for N ∈
//! {1, 2, 4}, with and without a (cold or warm) result cache, for both
//! scenario kinds.

use std::path::{Path, PathBuf};
use std::process::Command;

const XP: &str = env!("CARGO_BIN_EXE_xp");

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xp-procs-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// `xp run` with the given extra args; returns (json, csv) bytes.
fn run(scenario: &str, dir: &Path, tag: &str, extra: &[&str]) -> (String, String) {
    let json = dir.join(format!("{tag}.json"));
    let csv = dir.join(format!("{tag}.csv"));
    let status = Command::new(XP)
        .arg("run")
        .arg(scenario)
        .args([
            "--json",
            json.to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
        ])
        .args(extra)
        .output()
        .expect("spawn xp");
    assert!(
        status.status.success(),
        "xp run {scenario} {extra:?} failed:\n{}",
        String::from_utf8_lossy(&status.stderr)
    );
    (
        std::fs::read_to_string(json).unwrap(),
        std::fs::read_to_string(csv).unwrap(),
    )
}

#[test]
fn sweep_is_byte_identical_across_process_counts() {
    let dir = scratch("sweep");
    let (j1, c1) = run("fig6-small", &dir, "p1", &["--procs", "1"]);
    let (j2, c2) = run("fig6-small", &dir, "p2", &["--procs", "2"]);
    let (j4, c4) = run("fig6-small", &dir, "p4", &["--procs", "4"]);
    let (jt, ct) = run("fig6-small", &dir, "threads", &["--threads", "4"]);
    assert_eq!(j1, j2, "JSON differs between --procs 1 and 2");
    assert_eq!(j1, j4, "JSON differs between --procs 1 and 4");
    assert_eq!(j1, jt, "JSON differs between processes and threads");
    assert_eq!(c1, c2);
    assert_eq!(c1, c4);
    assert_eq!(c1, ct);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_is_byte_identical_across_process_counts_and_cache_states() {
    let dir = scratch("trace");
    let cache = dir.join("cache");
    let cache_arg = cache.to_str().unwrap();
    let (base, _) = run("fig5", &dir, "base", &["--threads", "4"]);
    // Cold cache, sharded across processes.
    let (cold, _) = run(
        "fig5",
        &dir,
        "cold",
        &["--procs", "2", "--cache-dir", cache_arg],
    );
    // Warm cache, different process count.
    let (warm, _) = run(
        "fig5",
        &dir,
        "warm",
        &["--procs", "4", "--cache-dir", cache_arg],
    );
    // Warm cache, in-process.
    let (warm_inproc, _) = run("fig5", &dir, "warm2", &["--cache-dir", cache_arg]);
    assert_eq!(base, cold, "procs+cold-cache must not move a byte");
    assert_eq!(base, warm, "warm cache must not move a byte");
    assert_eq!(base, warm_inproc);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn analytic_grid_is_byte_identical_across_process_counts_and_cache_states() {
    let dir = scratch("analytic");
    let cache = dir.join("cache");
    let cache_arg = cache.to_str().unwrap();
    let (base, base_csv) = run("fig3", &dir, "base", &["--threads", "4"]);
    let (p1, c1) = run("fig3", &dir, "p1", &["--procs", "1"]);
    // Cold cache, sharded across worker processes.
    let (cold, _) = run(
        "fig3",
        &dir,
        "cold",
        &["--procs", "2", "--cache-dir", cache_arg],
    );
    // Warm cache, in-process.
    let (warm, warm_csv) = run("fig3", &dir, "warm", &["--cache-dir", cache_arg]);
    assert_eq!(base, p1);
    assert_eq!(base, cold, "analytic procs+cold-cache must not move a byte");
    assert_eq!(base, warm, "analytic warm cache must not move a byte");
    assert_eq!(base_csv, c1);
    assert_eq!(base_csv, warm_csv);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_cache_reports_full_hits_through_the_cli() {
    let dir = scratch("meta");
    let cache = dir.join("cache");
    let meta = dir.join("meta.json");
    let run_meta = || {
        let out = Command::new(XP)
            .args([
                "run",
                "fig6-small",
                "--cache-dir",
                cache.to_str().unwrap(),
                "--meta",
                meta.to_str().unwrap(),
            ])
            .output()
            .expect("spawn xp");
        assert!(out.status.success());
        std::fs::read_to_string(&meta).unwrap()
    };
    let cold = run_meta();
    assert!(cold.contains("\"cache_hits\": 0"), "{cold}");
    assert!(cold.contains("\"cache_misses\": 2"), "{cold}");
    let warm = run_meta();
    assert!(warm.contains("\"cache_hits\": 2"), "{warm}");
    assert!(warm.contains("\"cache_misses\": 0"), "{warm}");
    let _ = std::fs::remove_dir_all(&dir);
}
