//! Observability never moves a report byte, driven through the real
//! `xp` binary: fig6-small with `--progress --log-json` produces the
//! same JSON/CSV bytes as a bare run, the NDJSON stream is well-formed
//! line by line (checked with the repo's own hand-rolled parser), spans
//! equal points, and the cache disposition flips miss→hit between a
//! cold and a warm run.

use dcn_scenarios::diff::{parse_json, Json};
use std::path::{Path, PathBuf};
use std::process::Command;

const XP: &str = env!("CARGO_BIN_EXE_xp");

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xp-obs-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(dir: &Path, tag: &str, extra: &[&str]) -> String {
    let json = dir.join(format!("{tag}.json"));
    let out = Command::new(XP)
        .args(["run", "fig6-small", "--json", json.to_str().unwrap()])
        .args(extra)
        .output()
        .expect("spawn xp");
    assert!(
        out.status.success(),
        "xp run {extra:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read_to_string(json).unwrap()
}

/// Members of one parsed NDJSON object.
type Members = Vec<(String, Json)>;

/// Parse an NDJSON log: every line must parse; returns (span objects,
/// summary object).
fn parse_ndjson(path: &Path) -> (Vec<Members>, Members) {
    let text = std::fs::read_to_string(path).unwrap();
    let mut spans = Vec::new();
    let mut summary = None;
    for line in text.lines() {
        let Json::Obj(members) = parse_json(line).expect("NDJSON line parses") else {
            panic!("NDJSON line must be an object: {line}");
        };
        let Some((_, Json::Str(record))) = members.iter().find(|(k, _)| k == "record") else {
            panic!("record discriminator missing: {line}");
        };
        match record.as_str() {
            "span" => spans.push(members),
            "summary" => {
                assert!(summary.is_none(), "exactly one summary record");
                summary = Some(members);
            }
            other => panic!("unknown record kind {other:?}"),
        }
    }
    // Span lines land in completion order; normalize to index order for
    // the assertions.
    spans.sort_by_key(|s| match field(s, "index") {
        Json::Int(i) => *i,
        _ => panic!("index must be an integer"),
    });
    (spans, summary.expect("summary record present, last"))
}

fn field<'a>(obj: &'a [(String, Json)], key: &str) -> &'a Json {
    &obj.iter().find(|(k, _)| k == key).expect(key).1
}

#[test]
fn observed_run_is_byte_identical_and_streams_wellformed_ndjson() {
    let dir = scratch("bytes");
    let cache = dir.join("cache");
    let cache_arg = cache.to_str().unwrap();
    let log_cold = dir.join("cold.ndjson");
    let log_warm = dir.join("warm.ndjson");

    // Bare run: no observability at all.
    let bare = run(&dir, "bare", &[]);
    // Cold cached run with the full observability surface on.
    let cold = run(
        &dir,
        "cold",
        &[
            "--progress",
            "--log-json",
            log_cold.to_str().unwrap(),
            "--cache-dir",
            cache_arg,
        ],
    );
    // Warm run: all hits, observability still on.
    let warm = run(
        &dir,
        "warm",
        &[
            "--progress",
            "--log-json",
            log_warm.to_str().unwrap(),
            "--cache-dir",
            cache_arg,
        ],
    );
    assert_eq!(bare, cold, "--progress/--log-json must not move a byte");
    assert_eq!(bare, warm, "a warm observed run must not move a byte");

    // fig6-small has 2 points: 2 spans + 1 summary per log.
    let (cold_spans, cold_sum) = parse_ndjson(&log_cold);
    let (warm_spans, warm_sum) = parse_ndjson(&log_warm);
    assert_eq!(cold_spans.len(), 2, "spans == points");
    assert_eq!(warm_spans.len(), 2);
    assert_eq!(*field(&cold_sum, "points"), Json::Int(2));
    assert_eq!(*field(&warm_sum, "cached"), Json::Int(2));
    for s in &cold_spans {
        assert_eq!(*field(s, "cache"), Json::Str("miss".into()));
        assert!(
            matches!(field(s, "sim"), Json::Obj(_)),
            "computed spans carry engine counters"
        );
    }
    for s in &warm_spans {
        assert_eq!(*field(s, "cache"), Json::Str("hit".into()));
        assert_eq!(*field(s, "sim"), Json::Null, "hits never ran a simulator");
    }
    // Spans land in index order and carry the sweep labels.
    let labels: Vec<&Json> = cold_spans.iter().map(|s| field(s, "label")).collect();
    assert!(matches!(labels[0], Json::Str(l) if l.contains("seed")));
    assert_eq!(*field(&cold_spans[0], "index"), Json::Int(0));
    assert_eq!(*field(&cold_spans[1], "index"), Json::Int(1));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_run_tags_spans_with_their_shard() {
    let dir = scratch("shards");
    let log = dir.join("procs.ndjson");
    let bare = run(&dir, "bare", &[]);
    let sharded = run(
        &dir,
        "procs",
        &["--procs", "2", "--log-json", log.to_str().unwrap()],
    );
    assert_eq!(bare, sharded, "sharded observed run must not move a byte");
    let (spans, sum) = parse_ndjson(&log);
    assert_eq!(spans.len(), 2);
    // Round-robin over 2 procs: point 0 on shard 0, point 1 on shard 1.
    assert_eq!(*field(&spans[0], "shard"), Json::Int(0));
    assert_eq!(*field(&spans[1], "shard"), Json::Int(1));
    assert!(
        matches!(field(&sum, "events_per_sec"), Json::Num(n) if *n > 0.0),
        "summary tracks engine throughput"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn meta_sidecar_carries_versioned_span_rollup() {
    let dir = scratch("meta");
    let meta = dir.join("meta.json");
    let out = Command::new(XP)
        .args(["run", "fig6-small", "--meta", meta.to_str().unwrap()])
        .output()
        .expect("spawn xp");
    assert!(out.status.success());
    let text = std::fs::read_to_string(&meta).unwrap();
    let Json::Obj(members) = parse_json(&text).expect("meta parses") else {
        panic!("meta must be an object");
    };
    assert_eq!(
        *field(&members, "meta_version"),
        Json::Int(dcn_runner::META_VERSION as i128)
    );
    let Json::Arr(spans) = field(&members, "spans") else {
        panic!("spans array");
    };
    assert_eq!(spans.len(), 2);
    assert!(matches!(field(&members, "drops"), Json::Obj(_)));
    assert!(matches!(field(&members, "pool"), Json::Obj(_)));
    assert!(matches!(field(&members, "events_per_sec"), Json::Num(_)));
    let _ = std::fs::remove_dir_all(&dir);
}
