//! Cache and sharding contract of the flow engine: `fig7-flow` is
//! byte-identical cold, warm, and under `--procs` sharding; its cache
//! keys are salted by `dcn_flow::FLOW_ENGINE_VERSION` and *not* by the
//! packet-simulator version, so simulator hot-path PRs leave the flow
//! cache warm (and flow-engine PRs leave every packet baseline warm).

use dcn_runner::{point_key, run, RunConfig};
use dcn_scenarios::{builtin, sweep_points, EngineKind, ScenarioOutput};
use std::fs;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("xp-flowcache-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn render(out: &ScenarioOutput) -> (String, String) {
    (out.to_json(), out.to_csv())
}

#[test]
fn fig7_flow_is_byte_identical_cold_warm_and_sharded() {
    let spec = builtin("fig7-flow").unwrap();
    let n = spec.num_points() as u64;
    let dir = scratch("coldwarm");

    let (plain, _) = run(
        &spec,
        &RunConfig {
            threads: 2,
            ..RunConfig::default()
        },
    )
    .unwrap();
    let cached = RunConfig {
        threads: 2,
        cache_dir: Some(dir.clone()),
        ..RunConfig::default()
    };
    let (cold, cold_stats) = run(&spec, &cached).unwrap();
    let (warm, warm_stats) = run(&spec, &cached).unwrap();
    assert_eq!((cold_stats.cache_hits, cold_stats.cache_misses), (0, n));
    assert_eq!((warm_stats.cache_hits, warm_stats.cache_misses), (n, 0));
    assert_eq!(render(&plain), render(&cold), "caching changed bytes");
    assert_eq!(render(&cold), render(&warm), "warm run changed bytes");

    // Sharding across worker processes changes neither bytes nor hits.
    let sharded = RunConfig {
        procs: 2,
        cache_dir: Some(dir.clone()),
        ..RunConfig::default()
    };
    let (procs, procs_stats) = run(&spec, &sharded).unwrap();
    assert_eq!(
        (procs_stats.cache_hits, procs_stats.cache_misses),
        (n, 0),
        "worker processes must share the warm cache"
    );
    assert_eq!(render(&warm), render(&procs), "--procs changed bytes");

    // And a cold sharded run reproduces the same bytes from scratch.
    let dir2 = scratch("coldprocs");
    let (cold_procs, s) = run(
        &spec,
        &RunConfig {
            procs: 2,
            cache_dir: Some(dir2.clone()),
            ..RunConfig::default()
        },
    )
    .unwrap();
    assert_eq!((s.cache_hits, s.cache_misses), (0, n));
    assert_eq!(render(&plain), render(&cold_procs));
    let _ = fs::remove_dir_all(&dir);
    let _ = fs::remove_dir_all(&dir2);
}

#[test]
fn flow_keys_carry_the_flow_salt_and_packet_keys_do_not() {
    let flow = builtin("fig7-flow").unwrap();
    let packet = builtin("fig7").unwrap();
    let flow_salt = format!("flow-engine-version={}", dcn_flow::FLOW_ENGINE_VERSION);
    let sim_salt = format!("engine-version={}", dcn_sim::ENGINE_VERSION);

    for p in &sweep_points(&flow) {
        let k = point_key(&flow, p);
        assert!(k.canon.contains(&flow_salt), "{}", k.canon);
        assert!(!k.canon.contains(&format!("\n{sim_salt}")), "{}", k.canon);
    }
    for p in &sweep_points(&packet) {
        let k = point_key(&packet, p);
        assert!(k.canon.contains(&sim_salt), "{}", k.canon);
        assert!(!k.canon.contains("flow-engine-version="), "{}", k.canon);
    }
}

#[test]
fn switching_engines_misses_while_identity_stays_warm() {
    let dir = scratch("engine-toggle");
    let cfg = RunConfig {
        threads: 2,
        cache_dir: Some(dir.clone()),
        ..RunConfig::default()
    };
    let spec = builtin("fig7-flow").unwrap();
    let n = spec.num_points() as u64;
    let (_, s1) = run(&spec, &cfg).unwrap();
    assert_eq!(s1.cache_misses, n);

    // Rename/redescribe is identity: still 100% hits.
    let mut renamed = spec.clone().describe("same physics, new words");
    renamed.name = "fig7-flow-renamed".into();
    let (_, s2) = run(&renamed, &cfg).unwrap();
    assert_eq!((s2.cache_hits, s2.cache_misses), (n, 0));

    // Flipping the engine back to packet is different physics under a
    // different salt: every point misses, nothing aliases.
    let mut as_packet = spec.clone();
    as_packet.engine = EngineKind::Packet;
    for (fp, pp) in sweep_points(&spec).iter().zip(&sweep_points(&as_packet)) {
        assert_ne!(point_key(&spec, fp), point_key(&as_packet, pp));
    }
    let (_, s3) = run(&as_packet, &cfg).unwrap();
    assert_eq!(s3.cache_hits, 0, "engine flip must not alias cache keys");
    let _ = fs::remove_dir_all(&dir);
}
