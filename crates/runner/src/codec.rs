//! Exact serialization of point outcomes.
//!
//! Cached and worker-transported outcomes must reproduce the in-process
//! result **bit for bit** — the byte-identical-reports guarantee rests
//! on it — so every `f64` is encoded as its IEEE-754 bit pattern (a JSON
//! integer), never as a decimal rendering. The encoding is single-line
//! JSON: one outcome is one line of the worker stdout protocol and the
//! `payload` member of a cache entry. Parsing reuses the strict JSON
//! parser of `dcn-scenarios::diff` (its `Int` arm keeps `u64` bit
//! patterns exact).

use dcn_scenarios::diff::{parse_json, Json};
use dcn_scenarios::{Algo, PointOutcome};
use dcn_telemetry::{ChannelTrace, Sample, TraceEntry};

/// One transportable point result: an FCT sweep point outcome or a
/// timeseries lineup entry.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// Raw outcome of one sweep point.
    Sweep(Box<PointOutcome>),
    /// One traced lineup entry.
    Trace(Box<TraceEntry>),
}

/// JSON string escape (mirrors the report renderers). Public because
/// every hand-rolled JSON emission in this crate (cache envelopes,
/// worker manifests, the CLI's `--meta` sidecar) must escape through
/// the same function.
pub fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn push_bits_vec(out: &mut String, xs: &[f64]) {
    out.push('[');
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&x.to_bits().to_string());
    }
    out.push(']');
}

/// Encode an outcome as one line of compact JSON (no interior newlines).
pub fn encode(outcome: &Outcome) -> String {
    let mut out = String::with_capacity(1024);
    match outcome {
        Outcome::Sweep(o) => {
            out.push_str(&format!(
                "{{\"kind\":\"sweep\",\"algo\":{},\"param\":{},\"load\":{},\"seed\":{},",
                jstr(&o.algo.key()),
                jstr(&o.param.label()),
                o.load.to_bits(),
                o.seed
            ));
            out.push_str("\"buckets\":[");
            for (i, b) in o.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_bits_vec(&mut out, b);
            }
            out.push_str("],");
            for (name, xs) in [
                ("short", &o.short),
                ("medium", &o.medium),
                ("long", &o.long),
                ("all", &o.all),
                ("buffer", &o.buffer),
            ] {
                out.push_str(&format!("\"{name}\":"));
                push_bits_vec(&mut out, xs);
                out.push(',');
            }
            out.push_str(&format!(
                "\"completed\":{},\"offered\":{},\"drops\":{}}}",
                o.completed, o.offered, o.drops
            ));
        }
        Outcome::Trace(e) => {
            out.push_str(&format!(
                "{{\"kind\":\"trace\",\"label\":{},\"stats\":[",
                jstr(&e.label)
            ));
            for (i, (k, v)) in e.stats.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{},{}]", jstr(k), v.to_bits()));
            }
            out.push_str("],\"channels\":[");
            for (i, c) in e.channels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":{},\"unit\":{},\"x_unit\":{},\"total_samples\":{},\
                     \"evicted\":{},\"samples\":[",
                    jstr(&c.name),
                    jstr(&c.unit),
                    jstr(&c.x_unit),
                    c.total_samples,
                    c.evicted
                ));
                for (j, s) in c.samples.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{},{}]", s.x.to_bits(), s.y.to_bits()));
                }
                out.push_str("]}");
            }
            out.push_str("]}");
        }
    }
    debug_assert!(!out.contains('\n'), "outcome encoding must be one line");
    out
}

// ---- decoding ----

fn obj(j: &Json) -> Result<&[(String, Json)], String> {
    match j {
        Json::Obj(members) => Ok(members),
        _ => Err("expected an object".into()),
    }
}

fn get<'a>(members: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    members
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing key {key:?}"))
}

fn uint(j: &Json) -> Result<u64, String> {
    match j {
        Json::Int(i) if (0..=u64::MAX as i128).contains(i) => Ok(*i as u64),
        _ => Err("expected a non-negative integer".into()),
    }
}

fn float_bits(j: &Json) -> Result<f64, String> {
    uint(j).map(f64::from_bits)
}

fn string(j: &Json) -> Result<String, String> {
    match j {
        Json::Str(s) => Ok(s.clone()),
        _ => Err("expected a string".into()),
    }
}

fn array(j: &Json) -> Result<&[Json], String> {
    match j {
        Json::Arr(items) => Ok(items),
        _ => Err("expected an array".into()),
    }
}

fn float_vec(j: &Json) -> Result<Vec<f64>, String> {
    array(j)?.iter().map(float_bits).collect()
}

/// Decode an outcome from its parsed JSON encoding.
pub fn decode(j: &Json) -> Result<Outcome, String> {
    let m = obj(j)?;
    match string(get(m, "kind")?)?.as_str() {
        "sweep" => {
            let buckets = array(get(m, "buckets")?)?
                .iter()
                .map(float_vec)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Outcome::Sweep(Box::new(PointOutcome {
                algo: Algo::parse(&string(get(m, "algo")?)?)?,
                param: dcn_scenarios::ParamSpec::parse(&string(get(m, "param")?)?)?,
                load: float_bits(get(m, "load")?)?,
                seed: uint(get(m, "seed")?)?,
                buckets,
                short: float_vec(get(m, "short")?)?,
                medium: float_vec(get(m, "medium")?)?,
                long: float_vec(get(m, "long")?)?,
                all: float_vec(get(m, "all")?)?,
                buffer: float_vec(get(m, "buffer")?)?,
                completed: uint(get(m, "completed")?)? as usize,
                offered: uint(get(m, "offered")?)? as usize,
                drops: uint(get(m, "drops")?)?,
            })))
        }
        "trace" => {
            let stats = array(get(m, "stats")?)?
                .iter()
                .map(|s| {
                    let pair = array(s)?;
                    if pair.len() != 2 {
                        return Err("stat entries are [name, bits] pairs".to_string());
                    }
                    Ok((string(&pair[0])?, float_bits(&pair[1])?))
                })
                .collect::<Result<Vec<_>, String>>()?;
            let channels = array(get(m, "channels")?)?
                .iter()
                .map(|c| {
                    let cm = obj(c)?;
                    let samples = array(get(cm, "samples")?)?
                        .iter()
                        .map(|s| {
                            let pair = array(s)?;
                            if pair.len() != 2 {
                                return Err("samples are [x, y] bit pairs".to_string());
                            }
                            Ok(Sample {
                                x: float_bits(&pair[0])?,
                                y: float_bits(&pair[1])?,
                            })
                        })
                        .collect::<Result<Vec<_>, String>>()?;
                    Ok(ChannelTrace {
                        name: string(get(cm, "name")?)?,
                        unit: string(get(cm, "unit")?)?,
                        x_unit: string(get(cm, "x_unit")?)?,
                        total_samples: uint(get(cm, "total_samples")?)?,
                        evicted: uint(get(cm, "evicted")?)?,
                        samples,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(Outcome::Trace(Box::new(TraceEntry {
                label: string(get(m, "label")?)?,
                stats,
                channels,
            })))
        }
        other => Err(format!("unknown outcome kind {other:?}")),
    }
}

/// Decode an outcome from its textual encoding.
pub fn decode_str(s: &str) -> Result<Outcome, String> {
    decode(&parse_json(s)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_scenarios::{builtin, run_point, run_trace_entry, sweep_points, trace_entries};

    #[test]
    fn sweep_outcome_round_trips_bit_for_bit() {
        let spec = builtin("fig6-small").unwrap();
        let p = sweep_points(&spec)[0];
        let out = run_point(&spec, p.algo, p.load, p.seed);
        let encoded = encode(&Outcome::Sweep(Box::new(out.clone())));
        assert!(!encoded.contains('\n'));
        let Outcome::Sweep(back) = decode_str(&encoded).unwrap() else {
            panic!("kind flipped");
        };
        assert_eq!(*back, out);
        // PartialEq on f64 treats -0.0 == 0.0 and misses NaN; pin the
        // actual bits too.
        for (a, b) in out.all.iter().zip(back.all.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn trace_outcome_round_trips_bit_for_bit() {
        let spec = builtin("fig2").unwrap();
        let e = &trace_entries(&spec)[0];
        let entry = run_trace_entry(&spec, e);
        let encoded = encode(&Outcome::Trace(Box::new(entry.clone())));
        let Outcome::Trace(back) = decode_str(&encoded).unwrap() else {
            panic!("kind flipped");
        };
        assert_eq!(*back, entry);
    }

    #[test]
    fn non_finite_and_signed_zero_floats_survive() {
        let mut out = run_point(
            &builtin("fig6-small").unwrap(),
            dcn_scenarios::Algo::PowerTcp,
            0.6,
            42,
        );
        out.buffer = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 0.0];
        let encoded = encode(&Outcome::Sweep(Box::new(out.clone())));
        let Outcome::Sweep(back) = decode_str(&encoded).unwrap() else {
            panic!()
        };
        let bits: Vec<u64> = back.buffer.iter().map(|x| x.to_bits()).collect();
        let want: Vec<u64> = out.buffer.iter().map(|x| x.to_bits()).collect();
        assert_eq!(bits, want);
    }

    #[test]
    fn corrupt_encodings_are_rejected() {
        assert!(decode_str("{}").is_err());
        assert!(decode_str("{\"kind\":\"sweep\"}").is_err());
        assert!(decode_str("{\"kind\":\"nope\"}").is_err());
        assert!(decode_str("not json").is_err());
        assert!(decode_str(
            "{\"kind\":\"trace\",\"label\":\"x\",\"stats\":[[1,2]],\"channels\":[]}"
        )
        .is_err());
    }
}
