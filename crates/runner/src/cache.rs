//! The on-disk content-addressed result cache.
//!
//! One point outcome is one file, `.xp-cache/<fnv64-hash>.json`:
//!
//! ```json
//! {"format": 1, "canon": "<canonical key encoding>", "payload": {...}}
//! ```
//!
//! The stored `canon` string is compared **byte-for-byte** against the
//! recomputed canonical encoding on every load; anything that fails to
//! read, parse, validate, or decode is a miss (the point recomputes and
//! the entry is overwritten). Writes go through a per-process temp file
//! plus atomic rename, so concurrently-running workers (or sweeps) never
//! observe half-written entries.

use crate::codec::{self, Outcome};
use crate::key::CacheKey;
use dcn_scenarios::diff::{parse_json, Json};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Version of the cache-entry envelope (the payload encoding is pinned
/// separately through the canonical key's `key-format`).
pub const CACHE_FORMAT: u32 = 1;

/// Aggregate statistics of a cache directory (`xp cache stat`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStat {
    /// Cache entry files.
    pub entries: usize,
    /// Total bytes across entries.
    pub bytes: u64,
}

/// [`CacheStat`] plus a per-engine entry breakdown, classified by each
/// entry's canonical-key salt line (`xp cache stat --json`, and the
/// serve daemon's `GET /cache`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStatDetail {
    /// The cache directory surveyed (as given, `/`-separated).
    pub dir: String,
    /// Entry count and total bytes.
    pub stat: CacheStat,
    /// Entries salted by the packet engine (`engine-version=`).
    pub packet: usize,
    /// Entries salted by the flow engine (`flow-engine-version=`).
    pub flow: usize,
    /// Entries salted by the analytic model (`fluid-model-version=`).
    pub analytic: usize,
    /// Entries whose canonical key could not be read or classified
    /// (corrupt or foreign files — they load as misses anyway).
    pub other: usize,
}

impl CacheStatDetail {
    /// The NDJSON record, in the span-record grammar family:
    /// `{"record":"cache","dir":...,"entries":...,"bytes":...,
    /// "packet":...,"flow":...,"analytic":...,"other":...}` (one line,
    /// no trailing newline).
    pub fn to_ndjson(&self) -> String {
        format!(
            "{{\"record\":\"cache\",\"dir\":{},\"entries\":{},\"bytes\":{},\
             \"packet\":{},\"flow\":{},\"analytic\":{},\"other\":{}}}",
            codec::jstr(&self.dir),
            self.stat.entries,
            self.stat.bytes,
            self.packet,
            self.flow,
            self.analytic,
            self.other
        )
    }
}

/// A content-addressed result cache rooted at one directory.
#[derive(Clone, Debug)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// The conventional cache location, relative to the working
    /// directory.
    pub const DEFAULT_DIR: &'static str = ".xp-cache";

    /// A cache rooted at `dir` (created lazily on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ResultCache { dir: dir.into() }
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Load and validate the outcome stored under `key`. Any failure —
    /// missing file, unparseable JSON, format or canonical-key mismatch,
    /// undecodable payload — is `None` (a miss), never an error.
    pub fn load(&self, key: &CacheKey) -> Option<Outcome> {
        let text = fs::read_to_string(self.dir.join(key.file_name())).ok()?;
        let parsed = parse_json(&text).ok()?;
        let Json::Obj(members) = &parsed else {
            return None;
        };
        let field = |k: &str| members.iter().find(|(m, _)| m == k).map(|(_, v)| v);
        match field("format") {
            Some(Json::Int(v)) if *v == CACHE_FORMAT as i128 => {}
            _ => return None,
        }
        match field("canon") {
            // Byte-for-byte key validation: a colliding or stale entry
            // must not be served.
            Some(Json::Str(canon)) if *canon == key.canon => {}
            _ => return None,
        }
        codec::decode(field("payload")?).ok()
    }

    /// Persist `outcome` under `key` (atomic rename; concurrent writers
    /// of the same key race benignly — both write identical bytes).
    pub fn store(&self, key: &CacheKey, outcome: &Outcome) -> io::Result<()> {
        fs::create_dir_all(&self.dir)?;
        let body = format!(
            "{{\"format\": {CACHE_FORMAT}, \"canon\": {}, \"payload\": {}}}\n",
            codec::jstr(&key.canon),
            codec::encode(outcome)
        );
        let tmp = self
            .dir
            .join(format!("{}.tmp.{}", key.file_name(), std::process::id()));
        fs::write(&tmp, body)?;
        fs::rename(tmp, self.dir.join(key.file_name()))
    }

    /// Entry count and total size.
    pub fn stat(&self) -> CacheStat {
        let mut stat = CacheStat::default();
        for path in self.entry_paths() {
            stat.entries += 1;
            stat.bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        }
        stat
    }

    /// [`ResultCache::stat`] plus the per-engine breakdown: each entry's
    /// canonical key is read back and classified by its salt line (line
    /// 2 of the canon — see `crates/runner/src/key.rs`).
    pub fn stat_detailed(&self) -> CacheStatDetail {
        let mut detail = CacheStatDetail {
            dir: self.dir.display().to_string().replace('\\', "/"),
            ..CacheStatDetail::default()
        };
        for path in self.entry_paths() {
            detail.stat.entries += 1;
            detail.stat.bytes += fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            match Self::entry_salt(&path).as_deref() {
                // `engine-version=` is a suffix of `flow-engine-version=`;
                // match the longer salts first.
                Some(s) if s.starts_with("flow-engine-version=") => detail.flow += 1,
                Some(s) if s.starts_with("fluid-model-version=") => detail.analytic += 1,
                Some(s) if s.starts_with("engine-version=") => detail.packet += 1,
                _ => detail.other += 1,
            }
        }
        detail
    }

    /// Delete every cache entry (plus any `*.json.tmp.*` files orphaned
    /// by a writer that crashed before its atomic rename); returns how
    /// many entries were removed.
    pub fn clear(&self) -> io::Result<usize> {
        let mut removed = 0;
        for path in self.entry_paths() {
            fs::remove_file(path)?;
            removed += 1;
        }
        if let Ok(dir) = fs::read_dir(&self.dir) {
            for entry in dir.filter_map(|e| e.ok()) {
                let path = entry.path();
                if path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.contains(".json.tmp."))
                {
                    fs::remove_file(path)?;
                }
            }
        }
        Ok(removed)
    }

    /// The salt line (line 2 of the canonical key) of the entry at
    /// `path`; `None` when the file cannot be read or parsed.
    fn entry_salt(path: &Path) -> Option<String> {
        let text = fs::read_to_string(path).ok()?;
        let Json::Obj(members) = parse_json(&text).ok()? else {
            return None;
        };
        let canon = members.iter().find_map(|(k, v)| match (k.as_str(), v) {
            ("canon", Json::Str(c)) => Some(c),
            _ => None,
        })?;
        canon.lines().nth(1).map(str::to_string)
    }

    /// All `<16-hex>.json` entry files, sorted for deterministic output.
    fn entry_paths(&self) -> Vec<PathBuf> {
        let Ok(dir) = fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut paths: Vec<PathBuf> = dir
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                    n.len() == 16 + 5
                        && n.ends_with(".json")
                        && n[..16].bytes().all(|b| b.is_ascii_hexdigit())
                })
            })
            .collect();
        paths.sort();
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::point_key;
    use dcn_scenarios::{builtin, run_point, sweep_points};

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xp-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> (CacheKey, Outcome) {
        let spec = builtin("fig6-small").unwrap();
        let p = sweep_points(&spec)[0];
        let out = run_point(&spec, p.algo, p.load, p.seed);
        (point_key(&spec, &p), Outcome::Sweep(Box::new(out)))
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = tmp_dir("roundtrip");
        let cache = ResultCache::new(&dir);
        let (key, out) = sample();
        assert!(cache.load(&key).is_none(), "cold cache must miss");
        cache.store(&key, &out).unwrap();
        assert_eq!(cache.load(&key), Some(out));
        let stat = cache.stat();
        assert_eq!(stat.entries, 1);
        assert!(stat.bytes > 0);
        // An orphaned temp file (crashed writer) is swept by clear().
        let orphan = dir.join(format!("{}.tmp.999", key.file_name()));
        fs::write(&orphan, "half-written").unwrap();
        assert_eq!(cache.clear().unwrap(), 1);
        assert!(!orphan.exists(), "clear must sweep orphaned temp files");
        assert!(cache.load(&key).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_mismatched_entries_miss() {
        let dir = tmp_dir("corrupt");
        let cache = ResultCache::new(&dir);
        let (key, out) = sample();
        cache.store(&key, &out).unwrap();
        let path = dir.join(key.file_name());

        // Truncated file: unparseable, must miss.
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(cache.load(&key).is_none());

        // Valid JSON with the wrong canonical key (a simulated hash
        // collision / stale-format entry): must miss.
        let foreign = full.replace("kind=sweep", "kind=sweep-other");
        assert_ne!(foreign, full);
        fs::write(&path, foreign).unwrap();
        assert!(cache.load(&key).is_none());

        // Restoring the real bytes hits again.
        fs::write(&path, full).unwrap();
        assert_eq!(cache.load(&key), Some(out));
        let _ = fs::remove_dir_all(&dir);
    }
}
