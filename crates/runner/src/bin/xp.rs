//! `xp` — the experiment CLI of the PowerTCP reproduction.
//!
//! ```text
//! xp list                         # built-in scenarios
//! xp show <name>                  # print a built-in spec as TOML
//! xp run <spec.toml | name>       # execute a sweep or trace scenario
//!        [--threads N]            # worker threads (default: all cores)
//!        [--procs N]              # worker processes (default 1 = in-process)
//!        [--cache]                # content-addressed result cache (.xp-cache)
//!        [--cache-dir DIR]        # cache somewhere else (implies --cache)
//!        [--json FILE | -]        # write JSON results (- = stdout)
//!        [--csv FILE | -]         # write CSV results (- = stdout)
//!        [--meta FILE | -]        # write JSON run metadata (spans, counters)
//!        [--progress]             # live done/total (cached k) · ETA on stderr
//!        [--log-json FILE]        # NDJSON span stream (one record per point)
//!        [--seeds a,b,c]          # override the spec's seed grid
//!        [--timeout-secs N]       # wall-clock budget per --procs worker
//! xp serve                        # results daemon: HTTP job queue + dashboards
//!        [--addr HOST:PORT]       # bind address (default 127.0.0.1:8080)
//!        [--workers N]            # job worker threads (default 2)
//!        [--threads N]            # executor threads per job (default: all cores)
//!        [--cache-dir DIR]        # shared result cache (default .xp-cache)
//!        [--no-cache]             # run jobs without the result cache
//!        [--queue-cap N]          # queued-job bound, 503 beyond (default 64)
//! xp diff <a.json> <b.json>       # compare two JSON reports
//! xp diff <a.csv> <b.csv>         # ... or two CSV reports, cell-wise
//! xp diff <dirA> <dirB>           # ... or two report directories (*.json
//!        [--tol X]                #     and *.csv), paired by file name;
//!                                 #     one aggregate exit code
//! xp cache stat [--cache-dir DIR] # entry count and size of the result cache
//!        [--json]                 #     as an NDJSON record with per-engine counts
//! xp cache clear [--cache-dir DIR]# delete every cache entry
//! xp bench                        # time the simulator hot paths
//!        [--runs N]               # timed repetitions per case (default 5)
//!        [--json FILE | -]        # write BENCH_sim.json-style report
//!        [--check]                # compare against BENCH_sim.json; exit 1
//!        [--baseline FILE]        #     on events/sec regressions beyond
//!        [--tol-pct X]            #     the tolerance (default 20%)
//! xp lint                         # determinism & hygiene static analysis
//!        [--json]                 #     NDJSON violation records
//!        [--root DIR]             #     workspace root (default: ascend from cwd)
//! xp worker                       # internal: one shard of an `xp run --procs`
//! ```
//!
//! Results are deterministic: the same spec produces byte-identical JSON
//! at any `--threads` / `--procs` value and any cache state — run
//! metadata (cache hits/misses, process count) is surfaced on stderr and
//! through `--meta`, never embedded in the byte-pinned reports.
//! Regression comparison across PRs is `xp run fig8 --json new.json &&
//! xp diff baseline.json new.json`; a directory of baselines compares in
//! one shot with `xp diff baselines/ fresh/ --tol 0`.

#![forbid(unsafe_code)]

use dcn_runner::{diff_dirs, worker_main, ResultCache, RunConfig};
use dcn_scenarios::{
    bench_check, bench_table, bench_to_json, builtin, builtin_specs, diff_csv, diff_reports,
    run_bench, spec_kind, EngineKind, ScenarioSpec,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  xp list\n  xp show <name>\n  xp run <spec.toml | name> \
         [--threads N] [--procs N] [--cache] [--cache-dir DIR]\n           \
         [--json FILE|-] [--csv FILE|-] [--meta FILE|-]\n           \
         [--progress] [--log-json FILE] [--seeds a,b,c] [--timeout-secs N]\n  \
         xp serve [--addr HOST:PORT] [--workers N] [--threads N]\n           \
         [--cache-dir DIR] [--no-cache] [--queue-cap N]\n  \
         xp diff <a.json|dirA> <b.json|dirB> [--tol X]\n  \
         xp cache <stat|clear> [--cache-dir DIR] [--json]\n  \
         xp bench [--runs N] [--json FILE|-] [--check] [--baseline FILE] [--tol-pct X]\n  \
         xp lint [--json] [--root DIR]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(),
        Some("show") => match args.get(1) {
            Some(name) => show(name),
            None => usage(),
        },
        Some("run") => run(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("diff") => diff(&args[1..]),
        Some("cache") => cache_cmd(&args[1..]),
        Some("bench") => bench(&args[1..]),
        Some("lint") => ExitCode::from(dcn_lint::cli_main(&args[1..])),
        Some("worker") => worker(),
        _ => usage(),
    }
}

/// `xp worker`: internal mode spawned by `xp run --procs N`. Reads a
/// shard manifest on stdin, writes outcome lines on stdout.
fn worker() -> ExitCode {
    match worker_main(&mut std::io::stdin().lock(), &mut std::io::stdout().lock()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("worker error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `xp bench [--runs N] [--json FILE|-] [--check] [--baseline FILE]
/// [--tol-pct X]`: time the simulator hot paths and optionally write
/// the JSON perf report (`BENCH_sim.json`) and/or gate against the
/// committed baseline — `--check` exits nonzero when any case's
/// events/sec regresses more than the tolerance, so perf regressions
/// gate in CI like byte drift does.
fn bench(args: &[String]) -> ExitCode {
    let mut runs = 5usize;
    let mut json = None;
    let mut check = false;
    let mut baseline = String::from("BENCH_sim.json");
    let mut tol_pct = 20.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => check = true,
            "--baseline" => {
                i += 1;
                match args.get(i) {
                    Some(v) => baseline = v.clone(),
                    None => {
                        eprintln!("error: --baseline needs a value");
                        return usage();
                    }
                }
            }
            "--tol-pct" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<f64>().ok()) {
                    Some(x) if x >= 0.0 => tol_pct = x,
                    _ => {
                        eprintln!("error: --tol-pct expects a non-negative number");
                        return usage();
                    }
                }
            }
            "--runs" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n >= 1 => runs = n,
                    _ => {
                        eprintln!("error: --runs expects a positive integer");
                        return usage();
                    }
                }
            }
            "--json" => {
                i += 1;
                match args.get(i) {
                    Some(v) => json = Some(v.clone()),
                    None => {
                        eprintln!("error: --json needs a value");
                        return usage();
                    }
                }
            }
            other => {
                eprintln!("error: unknown argument {other:?}");
                return usage();
            }
        }
        i += 1;
    }
    eprintln!("timing simulator hot paths ({runs} run(s) per case)...");
    let cases = run_bench(runs);
    eprint!("{}", bench_table(&cases));
    if let Some(dest) = json {
        if let Err(e) = emit("JSON", &dest, &bench_to_json(&cases, runs)) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    if check {
        let base = match std::fs::read_to_string(&baseline) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: reading baseline {baseline}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let res = match bench_check(&cases, &base, tol_pct) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: baseline {baseline}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for line in &res.lines {
            eprintln!("check: {line}");
        }
        if !res.regressions.is_empty() {
            eprintln!(
                "bench check FAILED: {} case(s) regressed beyond {tol_pct}% vs {baseline}",
                res.regressions.len()
            );
            return ExitCode::FAILURE;
        }
        eprintln!("bench check passed (tol {tol_pct}%) vs {baseline}");
    }
    ExitCode::SUCCESS
}

/// Engine column of `xp list`: the execution kind, with sweeps split by
/// the engine that runs their points (packet simulator vs flow-level).
fn engine_label(spec: &ScenarioSpec) -> &'static str {
    match spec_kind(spec) {
        "sweep" => spec.engine.key(),
        other => other,
    }
}

fn list() -> ExitCode {
    println!("built-in scenarios (run with `xp run <name>`):\n");
    for spec in builtin_specs() {
        println!(
            "  {:<18} {:>4} points  {:<10} {}",
            spec.name,
            spec.num_points(),
            engine_label(&spec),
            spec.description
        );
    }
    println!("\ncustom scenarios: `xp show <name> > my.toml`, edit, `xp run my.toml`");
    ExitCode::SUCCESS
}

/// The one stderr path for human annotations that accompany machine
/// output: every note is a `# `-prefixed comment line, so even a
/// careless `2>&1` capture still parses as commented TOML/NDJSON.
fn note(msg: &str) {
    eprintln!("# {msg}");
}

fn show(name: &str) -> ExitCode {
    match builtin(name) {
        Some(spec) => {
            // Notes go to stderr so stdout stays valid, pipeable TOML
            // (pinned by the cli_contract integration test).
            note(&format!("{}: {} scenario", spec.name, engine_label(&spec)));
            print!("{}", spec.to_toml());
            ExitCode::SUCCESS
        }
        None => {
            note(&format!(
                "unknown scenario {name:?}; `xp list` shows the library"
            ));
            ExitCode::FAILURE
        }
    }
}

struct RunArgs {
    target: String,
    cfg: RunConfig,
    json: Option<String>,
    csv: Option<String>,
    meta: Option<String>,
    seeds: Option<Vec<u64>>,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut target = None;
    let mut cfg = RunConfig {
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        ..RunConfig::default()
    };
    let mut cache = false;
    let mut cache_dir: Option<PathBuf> = None;
    let mut json = None;
    let mut csv = None;
    let mut meta = None;
    let mut seeds = None;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--threads" => {
                cfg.threads = take(&mut i)?
                    .parse()
                    .map_err(|_| "--threads expects a positive integer".to_string())?;
                if cfg.threads == 0 {
                    return Err("--threads expects a positive integer".into());
                }
            }
            "--procs" => {
                cfg.procs = take(&mut i)?
                    .parse()
                    .map_err(|_| "--procs expects a positive integer".to_string())?;
                if cfg.procs == 0 {
                    return Err("--procs expects a positive integer".into());
                }
            }
            "--cache" => cache = true,
            "--cache-dir" => {
                cache = true;
                cache_dir = Some(PathBuf::from(take(&mut i)?));
            }
            "--json" => json = Some(take(&mut i)?),
            "--csv" => csv = Some(take(&mut i)?),
            "--meta" => meta = Some(take(&mut i)?),
            "--progress" => cfg.progress = true,
            "--log-json" => cfg.log_json = Some(PathBuf::from(take(&mut i)?)),
            "--timeout-secs" => {
                let secs = take(&mut i)?
                    .parse::<u64>()
                    .map_err(|_| "--timeout-secs expects a positive integer".to_string())?;
                if secs == 0 {
                    return Err("--timeout-secs expects a positive integer".into());
                }
                cfg.timeout_secs = Some(secs);
            }
            "--seeds" => {
                let list = take(&mut i)?;
                let parsed: Result<Vec<u64>, _> =
                    list.split(',').map(|s| s.trim().parse::<u64>()).collect();
                seeds = Some(parsed.map_err(|_| {
                    "--seeds expects a comma-separated list of non-negative integers".to_string()
                })?);
            }
            other if target.is_none() && !other.starts_with("--") => {
                target = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    if cache {
        cfg.cache_dir = Some(cache_dir.unwrap_or_else(|| PathBuf::from(ResultCache::DEFAULT_DIR)));
    }
    Ok(RunArgs {
        target: target.ok_or("missing spec file or scenario name")?,
        cfg,
        json,
        csv,
        meta,
        seeds,
    })
}

fn load_spec(target: &str) -> Result<ScenarioSpec, String> {
    if Path::new(target).exists() {
        let src =
            std::fs::read_to_string(target).map_err(|e| format!("cannot read {target}: {e}"))?;
        ScenarioSpec::from_toml(&src).map_err(|e| format!("{target}: {e}"))
    } else {
        builtin(target).ok_or_else(|| {
            format!("{target:?} is neither a file nor a built-in scenario (`xp list`)")
        })
    }
}

fn emit(kind: &str, dest: &str, content: &str) -> Result<(), String> {
    if dest == "-" {
        print!("{content}");
        Ok(())
    } else {
        std::fs::write(dest, content).map_err(|e| format!("cannot write {kind} {dest}: {e}"))?;
        eprintln!("wrote {kind} to {dest}");
        Ok(())
    }
}

fn run(args: &[String]) -> ExitCode {
    let parsed = match parse_run_args(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let mut spec = match load_spec(&parsed.target) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(seeds) = &parsed.seeds {
        spec = spec.seeds(seeds.iter().copied());
    }
    eprintln!(
        "running {} scenario {:?}: {} {} on {}...",
        if spec.analytic().is_some() {
            "analytic"
        } else if spec.trace().is_some() {
            "trace"
        } else if spec.engine == EngineKind::Flow {
            "flow sweep"
        } else {
            "sweep"
        },
        spec.name,
        spec.num_points(),
        if spec.runs_as_entries() {
            "entries"
        } else {
            "points"
        },
        if parsed.cfg.procs > 1 {
            format!("{} process(es)", parsed.cfg.procs)
        } else {
            format!("{} thread(s)", parsed.cfg.threads)
        }
    );
    #[allow(clippy::disallowed_methods)] // wall-clock fallback for the stderr roll-up only
    let t0 = std::time::Instant::now(); // lint:allow(R2): stderr "done in" timing, never in report bytes
    let (result, stats) = match dcn_runner::run(&spec, &parsed.cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match &stats.summary {
        // The roll-up renders through the same SummaryRecord the
        // --log-json stream writes, so the two views cannot drift.
        Some(sum) => eprintln!("{}", sum.table_row()),
        None => eprintln!("done in {:.2?}", t0.elapsed()),
    }
    if let Some(why) = &stats.fallback {
        eprintln!("note: fell back to in-process threads ({why})");
    }
    if let Some(dir) = &parsed.cfg.cache_dir {
        eprintln!(
            "cache: {} hit(s), {} miss(es) in {}",
            stats.cache_hits,
            stats.cache_misses,
            dir.display()
        );
    }

    println!("{}", result.table());
    for (kind, dest, content) in [
        ("JSON", &parsed.json, result.to_json()),
        ("CSV", &parsed.csv, result.to_csv()),
        (
            "meta",
            &parsed.meta,
            dcn_runner::meta_json(
                &spec,
                parsed.cfg.threads,
                parsed.cfg.cache_dir.is_some(),
                &stats,
            ),
        ),
    ] {
        if let Some(dest) = dest {
            if let Err(e) = emit(kind, dest, &content) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `xp serve [--addr A] [--workers N] [--threads N] [--cache-dir DIR]
/// [--no-cache] [--queue-cap N]`: the long-running results daemon.
/// Submissions dedup through the shared result cache; reports served
/// over HTTP are byte-identical to `xp run` output for the same spec.
fn serve(args: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:8080".to_string();
    let mut workers = 2usize;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut cache_dir = Some(PathBuf::from(ResultCache::DEFAULT_DIR));
    let mut queue_cap = 64usize;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        let positive = |v: Result<String, String>, flag: &str| -> Result<usize, String> {
            match v?.parse::<usize>() {
                Ok(n) if n >= 1 => Ok(n),
                _ => Err(format!("{flag} expects a positive integer")),
            }
        };
        let step = match args[i].as_str() {
            "--addr" => take(&mut i).map(|v| addr = v),
            "--workers" => positive(take(&mut i), "--workers").map(|n| workers = n),
            "--threads" => positive(take(&mut i), "--threads").map(|n| threads = n),
            "--queue-cap" => positive(take(&mut i), "--queue-cap").map(|n| queue_cap = n),
            "--cache-dir" => take(&mut i).map(|v| cache_dir = Some(PathBuf::from(v))),
            "--no-cache" => {
                cache_dir = None;
                Ok(())
            }
            other => Err(format!("unknown argument {other:?}")),
        };
        if let Err(e) = step {
            eprintln!("error: {e}");
            return usage();
        }
        i += 1;
    }
    let cfg = dcn_serve::ServeConfig {
        workers,
        queue_cap,
        run: dcn_runner::serve_run_fn(cache_dir.clone(), threads),
        cache_stat: cache_dir.clone().map(dcn_runner::serve_stat_fn),
    };
    let server = match dcn_serve::Server::bind(&addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    note(&format!(
        "xp serve listening on http://{} ({} worker(s), {} thread(s)/job, cache {})",
        server.local_addr(),
        workers,
        threads,
        match &cache_dir {
            Some(dir) => dir.display().to_string(),
            None => "off".into(),
        }
    ));
    note("POST /jobs takes a TOML spec; GET / is the dashboard; POST /shutdown drains");
    match server.serve() {
        Ok(()) => {
            note("xp serve drained and stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `xp cache stat|clear [--cache-dir DIR] [--json]`.
fn cache_cmd(args: &[String]) -> ExitCode {
    let mut dir = PathBuf::from(ResultCache::DEFAULT_DIR);
    let mut action = None;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--cache-dir" => {
                i += 1;
                match args.get(i) {
                    Some(v) => dir = PathBuf::from(v),
                    None => {
                        eprintln!("error: --cache-dir needs a value");
                        return usage();
                    }
                }
            }
            "--json" => json = true,
            a @ ("stat" | "clear") if action.is_none() => action = Some(a.to_string()),
            other => {
                eprintln!("error: unknown argument {other:?}");
                return usage();
            }
        }
        i += 1;
    }
    let cache = ResultCache::new(&dir);
    match action.as_deref() {
        Some("stat") if json => {
            // One NDJSON record in the span-record grammar family, for
            // the serve daemon and CI; the human text path is unchanged.
            println!("{}", cache.stat_detailed().to_ndjson());
            ExitCode::SUCCESS
        }
        Some("stat") => {
            let s = cache.stat();
            println!(
                "{}: {} entr{}, {} bytes",
                dir.display(),
                s.entries,
                if s.entries == 1 { "y" } else { "ies" },
                s.bytes
            );
            ExitCode::SUCCESS
        }
        Some("clear") => match cache.clear() {
            Ok(n) => {
                eprintln!("removed {n} cache entr{}", if n == 1 { "y" } else { "ies" });
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}

/// `xp diff a b [--tol X]`: two report files, or two directories of
/// reports paired by file name. Exit 0 when everything matches within
/// the relative tolerance, 1 on drift, 2 on usage/IO errors.
fn diff(args: &[String]) -> ExitCode {
    let mut files: Vec<&String> = Vec::new();
    let mut tol = 0.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tol" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    eprintln!("error: --tol needs a value");
                    return usage();
                };
                tol = match v.parse::<f64>() {
                    Ok(t) if t >= 0.0 && t.is_finite() => t,
                    _ => {
                        eprintln!("error: --tol expects a non-negative number");
                        return usage();
                    }
                };
            }
            other if !other.starts_with("--") => files.push(&args[i]),
            other => {
                eprintln!("error: unknown argument {other:?}");
                return usage();
            }
        }
        i += 1;
    }
    let [a, b] = files.as_slice() else {
        eprintln!("error: diff takes exactly two report files or directories");
        return usage();
    };
    let (pa, pb) = (Path::new(a.as_str()), Path::new(b.as_str()));
    match (pa.is_dir(), pb.is_dir()) {
        (true, true) => diff_dir_pair(pa, pb, tol),
        (false, false) => diff_file_pair(a, b, tol),
        _ => {
            eprintln!("error: cannot diff a directory against a file");
            ExitCode::from(2)
        }
    }
}

fn diff_dir_pair(a: &Path, b: &Path, tol: f64) -> ExitCode {
    let outcome = match diff_dirs(a, b, tol) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    for file in &outcome.files {
        if file.differences.is_empty() {
            eprintln!("  {}: ok ({} values)", file.name, file.compared);
        } else {
            for line in &file.differences {
                println!("{}: {line}", file.name);
            }
        }
    }
    if outcome.is_match() {
        eprintln!(
            "directories match: {} file(s), {} values compared (tol {tol:e})",
            outcome.files.len(),
            outcome.compared()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "directories DIFFER: {}/{} file(s) drifted (tol {tol:e})",
            outcome.mismatched(),
            outcome.files.len()
        );
        ExitCode::FAILURE
    }
}

fn diff_file_pair(a: &str, b: &str, tol: f64) -> ExitCode {
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
    let (sa, sb) = match (read(a), read(b)) {
        (Ok(x), Ok(y)) => (x, y),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    // CSV reports diff cell-wise; everything else parses as JSON. Mixed
    // extensions make no sense to compare.
    let (csv_a, csv_b) = (a.ends_with(".csv"), b.ends_with(".csv"));
    if csv_a != csv_b {
        eprintln!("error: cannot diff a CSV report against a JSON report");
        return ExitCode::from(2);
    }
    let diff = if csv_a { diff_csv } else { diff_reports };
    match diff(&sa, &sb, tol) {
        Ok(d) if d.is_match() => {
            eprintln!(
                "reports match: {} values compared (tol {tol:e})",
                d.compared
            );
            ExitCode::SUCCESS
        }
        Ok(d) => {
            for line in &d.differences {
                println!("{line}");
            }
            if d.truncated {
                println!("... (more differences suppressed)");
            }
            eprintln!(
                "reports DIFFER: {} difference(s) shown, {} values compared (tol {tol:e})",
                d.differences.len(),
                d.compared
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
