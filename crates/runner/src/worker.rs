//! The `xp worker` protocol.
//!
//! A worker is the `xp` binary re-exec'd with the single argument
//! `worker`. The parent writes one JSON *shard manifest* to the
//! worker's stdin and closes it:
//!
//! ```json
//! {"spec_toml": "<scenario TOML>", "indices": [0, 2, 4],
//!  "cache_dir": ".xp-cache", "shard": 0, "shards": 2}
//! ```
//!
//! (`cache_dir` is `null` when caching is off; `shard`/`shards`
//! identify the worker so its spans and error messages carry shard
//! context.) The worker computes its indices **sequentially in manifest
//! order** — process-level sharding is the parallelism — consulting and
//! filling the shared result cache exactly like an in-process run, and
//! emits one line per point on stdout:
//!
//! ```json
//! {"index": 2, "cached": false, "wall_ms": 12.345, "sim": {...}, "outcome": {...}}
//! ```
//!
//! (`sim` is `null` for cache hits and analytic entries — no simulator
//! ran.) Outcome payloads are the bit-exact encoding of
//! [`crate::codec`], so a parent merging worker lines by index
//! reproduces the in-process report byte for byte; `wall_ms` and `sim`
//! are observability sidecars the parent replays into its span stream,
//! never report inputs. Anything written to stderr is diagnostic only;
//! a non-zero exit tells the parent to fall back. Worker failures after
//! manifest parse are prefixed `shard K/N (points ...):` so the
//! parent's `worker error:` line pins down which shard died.

// Workers ship span wall-clocks to the parent (R2-allowlisted in dcn-lint).
#![allow(clippy::disallowed_methods)]

use crate::cache::ResultCache;
use crate::codec::{self, jstr, Outcome};
use crate::exec::CachingSource;
use dcn_scenarios::diff::{parse_json, Json};
use dcn_scenarios::{
    sim_stats_from_json, sim_stats_json, sweep_points, trace_entries, CacheStatus, PointSource,
    ScenarioSpec,
};
use dcn_sim::SimStats;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// A parsed shard manifest.
#[derive(Clone, Debug)]
pub struct Manifest {
    /// The scenario to run.
    pub spec: ScenarioSpec,
    /// Point/entry indices this shard owns, in execution order.
    pub indices: Vec<usize>,
    /// Result-cache directory (`None` = caching off).
    pub cache_dir: Option<PathBuf>,
    /// This shard's id (0-based).
    pub shard: usize,
    /// Total shard count.
    pub shards: usize,
}

/// Render a shard manifest.
pub fn manifest_json(
    spec_toml: &str,
    indices: &[usize],
    cache_dir: Option<&Path>,
    shard: usize,
    shards: usize,
) -> String {
    let list = indices
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let cache = match cache_dir {
        Some(dir) => jstr(&dir.display().to_string()),
        None => "null".into(),
    };
    format!(
        "{{\"spec_toml\": {}, \"indices\": [{list}], \"cache_dir\": {cache}, \
         \"shard\": {shard}, \"shards\": {shards}}}\n",
        jstr(spec_toml)
    )
}

/// Parse a shard manifest.
pub fn parse_manifest(text: &str) -> Result<Manifest, String> {
    let Json::Obj(members) = parse_json(text.trim())? else {
        return Err("manifest must be a JSON object".into());
    };
    let field = |k: &str| {
        members
            .iter()
            .find(|(m, _)| m == k)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("manifest missing {k:?}"))
    };
    let Json::Str(toml) = field("spec_toml")? else {
        return Err("spec_toml must be a string".into());
    };
    let spec = ScenarioSpec::from_toml(toml)?;
    let Json::Arr(raw) = field("indices")? else {
        return Err("indices must be an array".into());
    };
    let indices = raw
        .iter()
        .map(|v| match v {
            Json::Int(i) if *i >= 0 => Ok(*i as usize),
            _ => Err("indices must be non-negative integers".to_string()),
        })
        .collect::<Result<Vec<_>, _>>()?;
    let cache_dir = match field("cache_dir")? {
        Json::Null => None,
        Json::Str(dir) => Some(PathBuf::from(dir)),
        _ => return Err("cache_dir must be a string or null".into()),
    };
    let uint = |k: &str| match field(k)? {
        Json::Int(i) if *i >= 0 => Ok(*i as usize),
        _ => Err(format!("{k} must be a non-negative integer")),
    };
    let (shard, shards) = (uint("shard")?, uint("shards")?);
    Ok(Manifest {
        spec,
        indices,
        cache_dir,
        shard,
        shards,
    })
}

/// One parsed worker result line.
#[derive(Clone, Debug)]
pub struct WorkerResult {
    /// Point/entry index in the spec's expansion order.
    pub index: usize,
    /// Served from the result cache?
    pub cached: bool,
    /// Wall-clock milliseconds the worker spent on this point.
    pub wall_ms: f64,
    /// Engine counters, when a simulator ran.
    pub sim: Option<SimStats>,
    /// The bit-exact outcome payload.
    pub outcome: Outcome,
}

/// Render one worker result line.
pub fn result_line(
    index: usize,
    cached: bool,
    wall_ms: f64,
    sim: Option<&SimStats>,
    outcome: &Outcome,
) -> String {
    format!(
        "{{\"index\": {index}, \"cached\": {cached}, \"wall_ms\": {wall_ms:.3}, \
         \"sim\": {}, \"outcome\": {}}}\n",
        match sim {
            Some(s) => sim_stats_json(s),
            None => "null".into(),
        },
        codec::encode(outcome)
    )
}

/// Parse one worker result line.
pub fn parse_result_line(line: &str) -> Result<WorkerResult, String> {
    let Json::Obj(members) = parse_json(line.trim())? else {
        return Err("worker line must be a JSON object".into());
    };
    let field = |k: &str| {
        members
            .iter()
            .find(|(m, _)| m == k)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("worker line missing {k:?}"))
    };
    let Json::Int(index) = field("index")? else {
        return Err("index must be an integer".into());
    };
    if *index < 0 {
        return Err("index must be non-negative".into());
    }
    let Json::Bool(cached) = field("cached")? else {
        return Err("cached must be a boolean".into());
    };
    let wall_ms = match field("wall_ms")? {
        Json::Num(n) => *n,
        Json::Int(i) => *i as f64,
        _ => return Err("wall_ms must be a number".into()),
    };
    let sim = match field("sim")? {
        Json::Null => None,
        j => Some(sim_stats_from_json(j).ok_or("sim must be a stats object or null")?),
    };
    let outcome = codec::decode(field("outcome")?)?;
    Ok(WorkerResult {
        index: *index as usize,
        cached: *cached,
        wall_ms,
        sim,
        outcome,
    })
}

/// Render a point-index list for shard-context messages (`0, 2, 4`).
pub fn fmt_indices(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// The `xp worker` entry point: read one manifest from `input`, write
/// result lines to `output`. Factored over generic streams so tests can
/// drive the protocol without spawning processes. Every error after the
/// manifest parses carries `shard K/N (points ...)` context.
pub fn worker_main(input: &mut dyn Read, output: &mut dyn Write) -> Result<(), String> {
    let mut text = String::new();
    input
        .read_to_string(&mut text)
        .map_err(|e| format!("cannot read manifest: {e}"))?;
    let m = parse_manifest(&text)?;
    let ctx = format!(
        "shard {}/{} (points {})",
        m.shard,
        m.shards,
        fmt_indices(&m.indices)
    );
    run_shard(&m, output).map_err(|e| format!("{ctx}: {e}"))
}

fn run_shard(m: &Manifest, output: &mut dyn Write) -> Result<(), String> {
    m.spec.validate()?;
    let source = CachingSource::new(m.cache_dir.as_ref().map(ResultCache::new));
    let emit = |output: &mut dyn Write, line: String| {
        output
            .write_all(line.as_bytes())
            .map_err(|e| format!("cannot write result: {e}"))
    };
    if m.spec.runs_as_entries() {
        let entries = trace_entries(&m.spec);
        for &i in &m.indices {
            let entry = entries
                .get(i)
                .ok_or_else(|| format!("entry index {i} out of range ({})", entries.len()))?;
            let t0 = Instant::now();
            let (outcome, obs) = source.trace_entry_obs(&m.spec, entry);
            emit(
                output,
                result_line(
                    i,
                    obs.cache == CacheStatus::Hit,
                    t0.elapsed().as_secs_f64() * 1e3,
                    obs.stats.as_ref(),
                    &Outcome::Trace(Box::new(outcome)),
                ),
            )?;
        }
    } else {
        let points = sweep_points(&m.spec);
        for &i in &m.indices {
            let point = points
                .get(i)
                .ok_or_else(|| format!("point index {i} out of range ({})", points.len()))?;
            let t0 = Instant::now();
            let (outcome, obs) = source.sweep_point_obs(&m.spec, point);
            emit(
                output,
                result_line(
                    i,
                    obs.cache == CacheStatus::Hit,
                    t0.elapsed().as_secs_f64() * 1e3,
                    obs.stats.as_ref(),
                    &Outcome::Sweep(Box::new(outcome)),
                ),
            )?;
        }
    }
    output.flush().map_err(|e| format!("cannot flush: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_scenarios::{builtin, run_sweep};

    #[test]
    fn manifest_round_trips() {
        let spec = builtin("fig6-small").unwrap();
        let toml = spec.to_toml();
        let m = manifest_json(&toml, &[0, 1], Some(Path::new(".xp-cache")), 1, 4);
        let parsed = parse_manifest(&m).unwrap();
        assert_eq!(parsed.spec, spec);
        assert_eq!(parsed.indices, vec![0, 1]);
        assert_eq!(parsed.cache_dir, Some(PathBuf::from(".xp-cache")));
        assert_eq!((parsed.shard, parsed.shards), (1, 4));
        let none = parse_manifest(&manifest_json(&toml, &[1], None, 0, 1)).unwrap();
        assert_eq!(none.cache_dir, None);
    }

    #[test]
    fn worker_reproduces_the_in_process_sweep() {
        let spec = builtin("fig6-small").unwrap();
        let manifest = manifest_json(&spec.to_toml(), &[1, 0], None, 0, 1);
        let mut out = Vec::new();
        worker_main(&mut manifest.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        // Lines come back in manifest order and merge by index.
        let r1 = parse_result_line(lines[0]).unwrap();
        let r0 = parse_result_line(lines[1]).unwrap();
        assert_eq!((r1.index, r0.index), (1, 0));
        assert!(!r1.cached, "no cache configured");
        // Computed points ship real engine counters and a wall clock.
        assert!(r1.sim.is_some_and(|s| s.events_processed > 0));
        assert!(r1.wall_ms > 0.0);
        let (Outcome::Sweep(o0), Outcome::Sweep(o1)) = (r0.outcome, r1.outcome) else {
            panic!("sweep outcomes expected");
        };
        let direct = run_sweep(&spec, 1).unwrap();
        let merged = dcn_scenarios::SweepResult::build(&spec, vec![*o0, *o1]);
        assert_eq!(merged.to_json(), direct.to_json());
    }

    #[test]
    fn bad_manifests_are_rejected() {
        assert!(worker_main(&mut "not json".as_bytes(), &mut Vec::new()).is_err());
        let spec = builtin("fig6-small").unwrap();
        let oob = manifest_json(&spec.to_toml(), &[99], None, 2, 4);
        let err = worker_main(&mut oob.as_bytes(), &mut Vec::new()).unwrap_err();
        // Post-parse failures carry shard context for the parent's
        // `worker error:` line.
        assert!(err.starts_with("shard 2/4 (points 99):"), "got: {err}");
    }
}
