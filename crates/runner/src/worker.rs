//! The `xp worker` protocol.
//!
//! A worker is the `xp` binary re-exec'd with the single argument
//! `worker`. The parent writes one JSON *shard manifest* to the
//! worker's stdin and closes it:
//!
//! ```json
//! {"spec_toml": "<scenario TOML>", "indices": [0, 2, 4], "cache_dir": ".xp-cache"}
//! ```
//!
//! (`cache_dir` is `null` when caching is off.) The worker computes its
//! indices **sequentially in manifest order** — process-level sharding
//! is the parallelism — consulting and filling the shared result cache
//! exactly like an in-process run, and emits one line per point on
//! stdout:
//!
//! ```json
//! {"index": 2, "cached": false, "outcome": {...}}
//! ```
//!
//! Outcome payloads are the bit-exact encoding of [`crate::codec`], so
//! a parent merging worker lines by index reproduces the in-process
//! report byte for byte. Anything written to stderr is diagnostic only;
//! a non-zero exit tells the parent to fall back.

use crate::cache::ResultCache;
use crate::codec::{self, jstr, Outcome};
use crate::exec::CachingSource;
use dcn_scenarios::diff::{parse_json, Json};
use dcn_scenarios::{sweep_points, trace_entries, ScenarioSpec};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Render a shard manifest.
pub fn manifest_json(spec_toml: &str, indices: &[usize], cache_dir: Option<&Path>) -> String {
    let list = indices
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let cache = match cache_dir {
        Some(dir) => jstr(&dir.display().to_string()),
        None => "null".into(),
    };
    format!(
        "{{\"spec_toml\": {}, \"indices\": [{list}], \"cache_dir\": {cache}}}\n",
        jstr(spec_toml)
    )
}

/// Parse a shard manifest into (spec, indices, cache dir).
pub fn parse_manifest(text: &str) -> Result<(ScenarioSpec, Vec<usize>, Option<PathBuf>), String> {
    let Json::Obj(members) = parse_json(text.trim())? else {
        return Err("manifest must be a JSON object".into());
    };
    let field = |k: &str| {
        members
            .iter()
            .find(|(m, _)| m == k)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("manifest missing {k:?}"))
    };
    let Json::Str(toml) = field("spec_toml")? else {
        return Err("spec_toml must be a string".into());
    };
    let spec = ScenarioSpec::from_toml(toml)?;
    let Json::Arr(raw) = field("indices")? else {
        return Err("indices must be an array".into());
    };
    let indices = raw
        .iter()
        .map(|v| match v {
            Json::Int(i) if *i >= 0 => Ok(*i as usize),
            _ => Err("indices must be non-negative integers".to_string()),
        })
        .collect::<Result<Vec<_>, _>>()?;
    let cache_dir = match field("cache_dir")? {
        Json::Null => None,
        Json::Str(dir) => Some(PathBuf::from(dir)),
        _ => return Err("cache_dir must be a string or null".into()),
    };
    Ok((spec, indices, cache_dir))
}

/// Render one worker result line.
pub fn result_line(index: usize, cached: bool, outcome: &Outcome) -> String {
    format!(
        "{{\"index\": {index}, \"cached\": {cached}, \"outcome\": {}}}\n",
        codec::encode(outcome)
    )
}

/// Parse one worker result line into (index, cached, outcome).
pub fn parse_result_line(line: &str) -> Result<(usize, bool, Outcome), String> {
    let Json::Obj(members) = parse_json(line.trim())? else {
        return Err("worker line must be a JSON object".into());
    };
    let field = |k: &str| {
        members
            .iter()
            .find(|(m, _)| m == k)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("worker line missing {k:?}"))
    };
    let Json::Int(index) = field("index")? else {
        return Err("index must be an integer".into());
    };
    if *index < 0 {
        return Err("index must be non-negative".into());
    }
    let Json::Bool(cached) = field("cached")? else {
        return Err("cached must be a boolean".into());
    };
    let outcome = codec::decode(field("outcome")?)?;
    Ok((*index as usize, *cached, outcome))
}

/// The `xp worker` entry point: read one manifest from `input`, write
/// result lines to `output`. Factored over generic streams so tests can
/// drive the protocol without spawning processes.
pub fn worker_main(input: &mut dyn Read, output: &mut dyn Write) -> Result<(), String> {
    let mut text = String::new();
    input
        .read_to_string(&mut text)
        .map_err(|e| format!("cannot read manifest: {e}"))?;
    let (spec, indices, cache_dir) = parse_manifest(&text)?;
    spec.validate()?;
    let source = CachingSource::new(cache_dir.map(ResultCache::new));
    let emit = |output: &mut dyn Write, line: String| {
        output
            .write_all(line.as_bytes())
            .map_err(|e| format!("cannot write result: {e}"))
    };
    if spec.runs_as_entries() {
        let entries = trace_entries(&spec);
        for i in indices {
            let entry = entries
                .get(i)
                .ok_or_else(|| format!("entry index {i} out of range ({})", entries.len()))?;
            let (outcome, cached) = source.trace_entry_tracked(&spec, entry);
            emit(
                output,
                result_line(i, cached, &Outcome::Trace(Box::new(outcome))),
            )?;
        }
    } else {
        let points = sweep_points(&spec);
        for i in indices {
            let point = points
                .get(i)
                .ok_or_else(|| format!("point index {i} out of range ({})", points.len()))?;
            let (outcome, cached) = source.sweep_point_tracked(&spec, point);
            emit(
                output,
                result_line(i, cached, &Outcome::Sweep(Box::new(outcome))),
            )?;
        }
    }
    output.flush().map_err(|e| format!("cannot flush: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_scenarios::{builtin, run_sweep};

    #[test]
    fn manifest_round_trips() {
        let spec = builtin("fig6-small").unwrap();
        let toml = spec.to_toml();
        let m = manifest_json(&toml, &[0, 1], Some(Path::new(".xp-cache")));
        let (back, indices, cache) = parse_manifest(&m).unwrap();
        assert_eq!(back, spec);
        assert_eq!(indices, vec![0, 1]);
        assert_eq!(cache, Some(PathBuf::from(".xp-cache")));
        let (_, _, none) = parse_manifest(&manifest_json(&toml, &[1], None)).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn worker_reproduces_the_in_process_sweep() {
        let spec = builtin("fig6-small").unwrap();
        let manifest = manifest_json(&spec.to_toml(), &[1, 0], None);
        let mut out = Vec::new();
        worker_main(&mut manifest.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        // Lines come back in manifest order and merge by index.
        let (i1, c1, o1) = parse_result_line(lines[0]).unwrap();
        let (i0, _, o0) = parse_result_line(lines[1]).unwrap();
        assert_eq!((i1, i0), (1, 0));
        assert!(!c1, "no cache configured");
        let (Outcome::Sweep(o0), Outcome::Sweep(o1)) = (o0, o1) else {
            panic!("sweep outcomes expected");
        };
        let direct = run_sweep(&spec, 1).unwrap();
        let merged = dcn_scenarios::SweepResult::build(&spec, vec![*o0, *o1]);
        assert_eq!(merged.to_json(), direct.to_json());
    }

    #[test]
    fn bad_manifests_are_rejected() {
        assert!(worker_main(&mut "not json".as_bytes(), &mut Vec::new()).is_err());
        let spec = builtin("fig6-small").unwrap();
        let oob = manifest_json(&spec.to_toml(), &[99], None);
        assert!(worker_main(&mut oob.as_bytes(), &mut Vec::new()).is_err());
    }
}
