//! `xp diff` over directories of reports.
//!
//! Two report directories are paired by file name (every `.json` and
//! `.csv` file in either side), each pair is compared with the matching
//! differ of `dcn-scenarios` (structural JSON or cell-wise CSV, chosen
//! by extension), and the drift aggregates into a single outcome — one
//! exit code for a whole baseline directory, e.g. comparing a committed
//! `baselines/` tree against a fresh `xp run`-produced one.

use dcn_scenarios::{diff_csv, diff_reports};
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// One compared (or unpairable) report file.
#[derive(Clone, Debug)]
pub struct FileDiff {
    /// File name (relative to both roots).
    pub name: String,
    /// Human-readable differences (empty = matched). Unpairable or
    /// unreadable files carry a single pseudo-difference.
    pub differences: Vec<String>,
    /// Leaf values compared.
    pub compared: usize,
}

/// Aggregate outcome of a directory comparison.
#[derive(Clone, Debug, Default)]
pub struct DirDiffOutcome {
    /// Per-file outcomes, in file-name order.
    pub files: Vec<FileDiff>,
}

impl DirDiffOutcome {
    /// Did every paired file match (and every file pair up)?
    pub fn is_match(&self) -> bool {
        self.files.iter().all(|f| f.differences.is_empty())
    }

    /// Total leaf values compared.
    pub fn compared(&self) -> usize {
        self.files.iter().map(|f| f.compared).sum()
    }

    /// Files with differences.
    pub fn mismatched(&self) -> usize {
        self.files
            .iter()
            .filter(|f| !f.differences.is_empty())
            .count()
    }
}

/// Compare every `.json` and `.csv` report under `a` against its
/// same-named counterpart under `b` (non-recursive; reports are flat
/// files). Files present on only one side are mismatches, not errors.
pub fn diff_dirs(a: &Path, b: &Path, tol: f64) -> Result<DirDiffOutcome, String> {
    let names_a = report_names(a)?;
    let names_b = report_names(b)?;
    let mut out = DirDiffOutcome::default();
    for name in names_a.union(&names_b) {
        let mut file = FileDiff {
            name: name.clone(),
            differences: Vec::new(),
            compared: 0,
        };
        match (names_a.contains(name), names_b.contains(name)) {
            (true, false) => file.differences.push(format!("only in {}", a.display())),
            (false, true) => file.differences.push(format!("only in {}", b.display())),
            _ => {
                let read = |root: &Path| {
                    fs::read_to_string(root.join(name))
                        .map_err(|e| format!("cannot read {}/{name}: {e}", root.display()))
                };
                // Unreadable or unparseable files degrade to a per-file
                // difference — the rest of the directory still compares.
                let diff = if name.ends_with(".csv") {
                    diff_csv
                } else {
                    diff_reports
                };
                match (read(a), read(b)) {
                    (Ok(x), Ok(y)) => match diff(&x, &y, tol) {
                        Ok(d) => {
                            file.compared = d.compared;
                            file.differences = d.differences;
                            if d.truncated {
                                file.differences
                                    .push("... (more differences suppressed)".into());
                            }
                        }
                        Err(e) => file.differences.push(e),
                    },
                    (Err(e), _) | (_, Err(e)) => file.differences.push(e),
                }
            }
        }
        out.files.push(file);
    }
    Ok(out)
}

fn report_names(dir: &Path) -> Result<BTreeSet<String>, String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
    Ok(entries
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_file())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.ends_with(".json") || n.ends_with(".csv"))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> (PathBuf, PathBuf) {
        let root = std::env::temp_dir().join(format!("xp-dirdiff-{tag}-{}", std::process::id()));
        let (a, b) = (root.join("a"), root.join("b"));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&a).unwrap();
        fs::create_dir_all(&b).unwrap();
        (a, b)
    }

    #[test]
    fn pairs_by_name_and_aggregates() {
        let (a, b) = scratch("agg");
        fs::write(a.join("x.json"), r#"{"v": 1.0}"#).unwrap();
        fs::write(b.join("x.json"), r#"{"v": 1.0}"#).unwrap();
        fs::write(a.join("y.json"), r#"{"v": 2.0}"#).unwrap();
        fs::write(b.join("y.json"), r#"{"v": 2.5}"#).unwrap();
        fs::write(a.join("only-a.json"), "{}").unwrap();
        fs::write(b.join("ignored.txt"), "not a report").unwrap();

        let d = diff_dirs(&a, &b, 0.0).unwrap();
        assert!(!d.is_match());
        assert_eq!(d.files.len(), 3);
        assert_eq!(d.mismatched(), 2); // y drifts, only-a unpaired
        assert!(d.compared() >= 2);

        // Within tolerance (and ignoring the unpaired file's removal),
        // everything matches.
        fs::remove_file(a.join("only-a.json")).unwrap();
        let d = diff_dirs(&a, &b, 0.5).unwrap();
        assert!(d.is_match(), "{:?}", d.files);
        let _ = fs::remove_dir_all(a.parent().unwrap());
    }

    #[test]
    fn csv_reports_pair_and_diff_cell_wise() {
        let (a, b) = scratch("csv");
        fs::write(a.join("t.csv"), "x,y\n1,2.5\n").unwrap();
        fs::write(b.join("t.csv"), "x,y\n1,2.5\n").unwrap();
        fs::write(a.join("drift.csv"), "x\n1.0\n").unwrap();
        fs::write(b.join("drift.csv"), "x\n1.5\n").unwrap();
        let d = diff_dirs(&a, &b, 0.0).unwrap();
        assert_eq!(d.files.len(), 2);
        assert_eq!(d.mismatched(), 1);
        let drift = d.files.iter().find(|f| f.name == "drift.csv").unwrap();
        assert!(drift.differences[0].contains("row 2"), "{drift:?}");
        // Within tolerance the whole directory matches.
        assert!(diff_dirs(&a, &b, 0.5).unwrap().is_match());
        let _ = fs::remove_dir_all(a.parent().unwrap());
    }

    #[test]
    fn missing_directory_is_an_error() {
        let (a, _) = scratch("missing");
        assert!(diff_dirs(&a, Path::new("/nonexistent-dir-xp"), 0.0).is_err());
        let _ = fs::remove_dir_all(a.parent().unwrap());
    }
}
