//! The runner execution layer: cache-aware in-process execution and
//! multi-process sharded execution.
//!
//! Both paths preserve the determinism contract end to end: outcomes
//! are keyed and merged by point index (never completion order), cached
//! payloads are bit-exact, and the reduction to reports is the same
//! [`SweepResult::build`] / [`TraceReport`] assembly the in-process
//! executor uses — so the report bytes are identical at any
//! `--threads` / `--procs` value and any cache state. Observability
//! (per-point spans, the `--progress` line, the `--log-json` stream)
//! rides alongside through a [`crate::obs::RunObserver`] and never
//! feeds the report path.

use crate::cache::ResultCache;
use crate::codec::Outcome;
use crate::key::{entry_key, point_key};
use crate::obs::RunObserver;
use crate::worker;
use dcn_scenarios::{
    point_label, run_scenario_observed, run_sweep_point_observed, run_trace_entry_observed,
    spec_kind, sweep_points, trace_entries, CacheStatus, PointObs, PointOutcome, PointSource,
    ScenarioOutput, ScenarioSpec, SpanRecord, SummaryRecord, SweepPoint, SweepResult,
    TraceEntrySpec,
};
use dcn_telemetry::{TraceEntry, TraceReport};
use std::io::Write;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How to execute a scenario.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// In-process worker threads (used when `procs <= 1`, and by the
    /// fallback path when worker processes cannot be spawned).
    pub threads: usize,
    /// Worker processes; `<= 1` means in-process execution.
    pub procs: usize,
    /// Result-cache directory (`None` disables caching).
    pub cache_dir: Option<PathBuf>,
    /// Binary to spawn in worker mode (defaults to the current
    /// executable, which is correct when the caller *is* `xp`).
    pub worker_exe: Option<PathBuf>,
    /// Redraw a `done/total (cached k) · ETA` line on stderr as points
    /// complete.
    pub progress: bool,
    /// Stream one NDJSON span record per point (plus a final summary
    /// record) to this file.
    pub log_json: Option<PathBuf>,
    /// Wall-clock budget per worker process; a worker still running
    /// this long after its spawn is killed and the run falls back
    /// in-process with the usual `shard K/N` context note (`None`
    /// disables the watchdog).
    pub timeout_secs: Option<u64>,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            threads: 1,
            procs: 1,
            cache_dir: None,
            worker_exe: None,
            progress: false,
            log_json: None,
            timeout_secs: None,
        }
    }
}

/// What a run did, beyond its report: the run metadata surfaced by
/// `xp run` (stderr summary, the `--meta` sidecar, the `--log-json`
/// stream) — deliberately *not* embedded in the result report, whose
/// bytes are pinned across cache states and process counts.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Points / lineup entries executed.
    pub points: usize,
    /// Points served from the cache.
    pub cache_hits: u64,
    /// Points computed (and stored, when caching is on).
    pub cache_misses: u64,
    /// Worker processes actually used (1 = in-process).
    pub procs: usize,
    /// Why multi-process execution fell back to in-process threads, if
    /// it did.
    pub fallback: Option<String>,
    /// One span per point, in index order.
    pub spans: Vec<SpanRecord>,
    /// The run roll-up (wall clock, cached count, event totals).
    pub summary: Option<SummaryRecord>,
}

/// A [`PointSource`] that consults a [`ResultCache`] before computing,
/// and stores every computed outcome back. Hit/miss counters are atomic
/// so the source can be shared across executor threads.
pub struct CachingSource {
    cache: Option<ResultCache>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CachingSource {
    /// A source backed by `cache` (`None` = always compute).
    pub fn new(cache: Option<ResultCache>) -> Self {
        CachingSource {
            cache,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// (hits, misses) so far.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

impl PointSource for CachingSource {
    fn sweep_point(&self, spec: &ScenarioSpec, point: &SweepPoint) -> PointOutcome {
        self.sweep_point_obs(spec, point).0
    }

    fn trace_entry(&self, spec: &ScenarioSpec, entry: &TraceEntrySpec) -> TraceEntry {
        self.trace_entry_obs(spec, entry).0
    }

    fn sweep_point_obs(&self, spec: &ScenarioSpec, point: &SweepPoint) -> (PointOutcome, PointObs) {
        let Some(cache) = &self.cache else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let (out, stats) = run_sweep_point_observed(spec, point);
            return (
                out,
                PointObs {
                    cache: CacheStatus::Computed,
                    stats: Some(stats),
                },
            );
        };
        let key = point_key(spec, point);
        if let Some(Outcome::Sweep(out)) = cache.load(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            // Hits carry no stats: no simulator ran.
            return (
                *out,
                PointObs {
                    cache: CacheStatus::Hit,
                    stats: None,
                },
            );
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (out, stats) = run_sweep_point_observed(spec, point);
        // Best-effort store: an unwritable cache degrades to recompute,
        // it does not fail the run.
        let _ = cache.store(&key, &Outcome::Sweep(Box::new(out.clone())));
        (
            out,
            PointObs {
                cache: CacheStatus::Miss,
                stats: Some(stats),
            },
        )
    }

    fn trace_entry_obs(
        &self,
        spec: &ScenarioSpec,
        entry: &TraceEntrySpec,
    ) -> (TraceEntry, PointObs) {
        let Some(cache) = &self.cache else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let (out, stats) = run_trace_entry_observed(spec, entry);
            return (
                out,
                PointObs {
                    cache: CacheStatus::Computed,
                    stats,
                },
            );
        };
        let key = entry_key(spec, entry);
        if let Some(Outcome::Trace(out)) = cache.load(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (
                *out,
                PointObs {
                    cache: CacheStatus::Hit,
                    stats: None,
                },
            );
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let (out, stats) = run_trace_entry_observed(spec, entry);
        let _ = cache.store(&key, &Outcome::Trace(Box::new(out.clone())));
        (
            out,
            PointObs {
                cache: CacheStatus::Miss,
                stats,
            },
        )
    }
}

/// Execute `spec` per `cfg`: multi-process when `procs > 1` (falling
/// back cleanly to in-process threads if workers cannot run), in-process
/// threads otherwise, with the result cache consulted either way.
pub fn run(spec: &ScenarioSpec, cfg: &RunConfig) -> Result<(ScenarioOutput, RunStats), String> {
    spec.validate()?;
    if cfg.procs > 1 {
        match run_procs(spec, cfg) {
            Ok(done) => return Ok(done),
            Err(why) => {
                // Clean fallback: same points, same merge, in-process.
                // With the cache on, any outcome a worker managed to
                // store is reused rather than recomputed. A fresh
                // observer (inside run_inproc) re-truncates the NDJSON
                // log, so it holds only the attempt that produced the
                // report.
                let (out, mut stats) = run_inproc(spec, cfg, cfg.threads.max(cfg.procs))?;
                stats.fallback = Some(why);
                return Ok((out, stats));
            }
        }
    }
    run_inproc(spec, cfg, cfg.threads)
}

fn run_inproc(
    spec: &ScenarioSpec,
    cfg: &RunConfig,
    threads: usize,
) -> Result<(ScenarioOutput, RunStats), String> {
    let source = CachingSource::new(cfg.cache_dir.as_ref().map(ResultCache::new));
    let obs = RunObserver::new(spec.num_points(), cfg.progress, cfg.log_json.as_deref())?;
    let output = run_scenario_observed(spec, threads.max(1), &source, &obs)?;
    let (cache_hits, cache_misses) = source.counters();
    let (spans, summary) = obs.finish(&spec.name, spec_kind(spec));
    Ok((
        output,
        RunStats {
            points: spec.num_points(),
            cache_hits,
            cache_misses,
            procs: 1,
            fallback: None,
            spans,
            summary: Some(summary),
        },
    ))
}

/// Multi-process execution: shard point indices round-robin over `xp
/// worker` children, stream their outcome lines back, and merge by
/// index. Workers ship per-point wall clocks and engine counters along
/// with each outcome; the parent replays them as shard-tagged spans
/// through the same observer the in-process path uses. Any worker
/// failure aborts to the caller (with `shard K/N (points ...)` context,
/// which becomes the fallback note), and the caller falls back to
/// in-process execution.
fn run_procs(spec: &ScenarioSpec, cfg: &RunConfig) -> Result<(ScenarioOutput, RunStats), String> {
    let exe = match &cfg.worker_exe {
        Some(path) => path.clone(),
        None => std::env::current_exe().map_err(|e| format!("cannot locate worker binary: {e}"))?,
    };
    let is_trace = spec.runs_as_entries();
    let (n, labels): (usize, Vec<String>) = if is_trace {
        let entries = trace_entries(spec);
        (
            entries.len(),
            entries.iter().map(|e| e.label.clone()).collect(),
        )
    } else {
        let points = sweep_points(spec);
        (points.len(), points.iter().map(point_label).collect())
    };
    let procs = cfg.procs.clamp(1, n.max(1));
    let spec_toml = spec.to_toml();

    // Round-robin sharding keeps shards balanced when point cost varies
    // monotonically along the expansion (e.g. rising loads).
    let shards: Vec<Vec<usize>> = (0..procs)
        .map(|w| (w..n).step_by(procs).collect())
        .collect();

    // (shard id, owned indices, child, deadline) — the id and indices
    // give every failure message (and the fallback note) its shard
    // context; the deadline is the worker's wall-clock budget, counted
    // from its own spawn.
    let mut children: Vec<(usize, &[usize], Child, Option<Instant>)> = Vec::new();
    let reap = |children: &mut Vec<(usize, &[usize], Child, Option<Instant>)>| {
        for (_, _, c, _) in children.iter_mut() {
            let _ = c.kill();
            let _ = c.wait();
        }
    };
    for (w, shard) in shards.iter().enumerate().filter(|(_, s)| !s.is_empty()) {
        let mut child = match Command::new(&exe)
            .arg("worker")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
        {
            Ok(child) => child,
            Err(e) => {
                // Reap anything that did start before falling back.
                reap(&mut children);
                return Err(format!("cannot spawn {}: {e}", exe.display()));
            }
        };
        let manifest = worker::manifest_json(&spec_toml, shard, cfg.cache_dir.as_deref(), w, procs);
        if let Err(e) = child
            .stdin
            .take()
            .expect("piped stdin")
            .write_all(manifest.as_bytes())
        {
            let _ = child.kill();
            let _ = child.wait();
            reap(&mut children);
            return Err(format!(
                "shard {w}/{procs} (points {}): cannot write worker manifest: {e}",
                worker::fmt_indices(shard)
            ));
        }
        // Dropping stdin closes the pipe; the worker sees EOF.
        let deadline = cfg
            .timeout_secs
            .map(|s| clock_now() + Duration::from_secs(s));
        children.push((w, shard, child, deadline));
    }

    let obs = RunObserver::new(n, cfg.progress, cfg.log_json.as_deref())?;
    let mut slots: Vec<Option<Outcome>> = (0..n).map(|_| None).collect();
    let (mut hits, mut misses) = (0u64, 0u64);
    // Consume children one at a time; on any error, reap the rest before
    // returning so the fallback path does not race still-running workers
    // (and nothing is left a zombie).
    while let Some((w, shard, child, deadline)) = children.pop() {
        let ctx = format!("shard {w}/{procs} (points {})", worker::fmt_indices(shard));
        let bail = |children: &mut Vec<(usize, &[usize], Child, Option<Instant>)>, why: String| {
            reap(children);
            format!("{ctx}: {why}")
        };
        let out = match wait_worker(child, deadline) {
            Ok(out) => out,
            Err(e) => return Err(bail(&mut children, e)),
        };
        if !out.status.success() {
            return Err(bail(
                &mut children,
                format!("worker exited with {}", out.status),
            ));
        }
        let Ok(text) = String::from_utf8(out.stdout) else {
            return Err(bail(
                &mut children,
                "worker emitted non-UTF-8 output".into(),
            ));
        };
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let r = match worker::parse_result_line(line) {
                Ok(parsed) => parsed,
                Err(e) => return Err(bail(&mut children, e)),
            };
            if r.index >= n {
                return Err(bail(
                    &mut children,
                    format!("worker returned out-of-range index {}", r.index),
                ));
            }
            if r.cached {
                hits += 1;
            } else {
                misses += 1;
            }
            // Replay the worker's observability sidecar as a
            // shard-tagged span. Cache semantics mirror the worker's
            // CachingSource: hit / miss with a cache, computed without.
            obs.record(SpanRecord {
                index: r.index,
                label: labels[r.index].clone(),
                cache: if r.cached {
                    CacheStatus::Hit
                } else if cfg.cache_dir.is_some() {
                    CacheStatus::Miss
                } else {
                    CacheStatus::Computed
                },
                shard: Some(w),
                wall_ms: r.wall_ms,
                stats: r.sim,
            });
            slots[r.index] = Some(r.outcome);
        }
        if let Some(&missing) = shard.iter().find(|i| slots[**i].is_none()) {
            return Err(bail(
                &mut children,
                format!("worker dropped point {missing}"),
            ));
        }
    }
    if let Some(missing) = slots.iter().position(|s| s.is_none()) {
        return Err(format!("worker dropped point {missing}"));
    }
    let (spans, summary) = obs.finish(&spec.name, spec_kind(spec));

    // Order-stable merge: slots are already in expansion order.
    let output = if is_trace {
        let entries = slots
            .into_iter()
            .map(|s| match s {
                Some(Outcome::Trace(e)) => Ok(*e),
                _ => Err("worker returned a sweep outcome for a trace entry".to_string()),
            })
            .collect::<Result<Vec<_>, _>>()?;
        ScenarioOutput::Trace(TraceReport {
            name: spec.name.clone(),
            description: spec.description.clone(),
            entries,
        })
    } else {
        let outcomes = slots
            .into_iter()
            .map(|s| match s {
                Some(Outcome::Sweep(o)) => Ok(*o),
                _ => Err("worker returned a trace outcome for a sweep point".to_string()),
            })
            .collect::<Result<Vec<_>, _>>()?;
        ScenarioOutput::Sweep(SweepResult::build(spec, outcomes))
    };
    Ok((
        output,
        RunStats {
            points: n,
            cache_hits: hits,
            cache_misses: misses,
            procs,
            fallback: None,
            spans,
            summary: Some(summary),
        },
    ))
}

/// Wait for a worker, enforcing its wall-clock deadline. Without a
/// deadline this is `wait_with_output`; with one, the worker's stdout is
/// drained on a side thread (a chatty worker must not deadlock on a full
/// pipe while we poll) and a worker still running at its deadline is
/// killed — the resulting "timed out" error carries the shard context
/// through `bail` and lands in the in-process fallback note.
fn wait_worker(
    mut child: Child,
    deadline: Option<Instant>,
) -> Result<std::process::Output, String> {
    let Some(deadline) = deadline else {
        return child
            .wait_with_output()
            .map_err(|e| format!("worker I/O failed: {e}"));
    };
    let mut stdout = child.stdout.take().expect("piped stdout");
    let reader = std::thread::spawn(move || {
        let mut buf = Vec::new();
        let _ = std::io::Read::read_to_end(&mut stdout, &mut buf);
        buf
    });
    loop {
        match child.try_wait() {
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                // Don't join the reader: a grandchild the kill didn't
                // reach can hold the pipe open indefinitely, and the
                // output is discarded on this path anyway.
                drop(reader);
                return Err(format!("worker I/O failed: {e}"));
            }
            Ok(Some(status)) => {
                let stdout = reader.join().unwrap_or_default();
                return Ok(std::process::Output {
                    status,
                    stdout,
                    stderr: Vec::new(),
                });
            }
            Ok(None) => {
                if clock_now() >= deadline {
                    let _ = child.kill();
                    let _ = child.wait();
                    // As above: never block on a pipe an orphaned
                    // grandchild may still hold open.
                    drop(reader);
                    return Err("worker timed out; killed".into());
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// The worker watchdog's clock. Wall-clock here gates only *whether a
/// worker is killed* — and a killed worker means fallback, whose output
/// is byte-identical by the determinism contract — so report bytes never
/// depend on it.
fn clock_now() -> Instant {
    #[allow(clippy::disallowed_methods)]
    Instant::now() // lint:allow(R2): worker timeout watchdog — scheduling only, never report bytes
}

/// The production [`dcn_serve::RunFn`]: every daemon job executes
/// through a fresh [`CachingSource`] over the shared cache directory, so
/// concurrent submissions dedup work through the content-addressed
/// store, and spans flow straight into the job's event log.
pub fn serve_run_fn(cache_dir: Option<PathBuf>, threads: usize) -> dcn_serve::RunFn {
    Arc::new(move |spec, obs| {
        spec.validate()?;
        let source = CachingSource::new(cache_dir.as_ref().map(ResultCache::new));
        run_scenario_observed(spec, threads.max(1), &source, obs)
    })
}

/// The production [`dcn_serve::StatFn`]: the daemon's `GET /cache`
/// serves exactly the `xp cache stat --json` record.
pub fn serve_stat_fn(cache_dir: PathBuf) -> dcn_serve::StatFn {
    Arc::new(move || ResultCache::new(&cache_dir).stat_detailed().to_ndjson())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_scenarios::builtin;
    use std::path::Path;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("xp-exec-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn json_of(out: &ScenarioOutput) -> String {
        out.to_json()
    }

    #[test]
    fn cold_then_warm_cache_is_byte_identical_with_full_hits() {
        let dir = tmp_dir("warm");
        let spec = builtin("fig6-small").unwrap();
        let cfg = RunConfig {
            threads: 2,
            cache_dir: Some(dir.clone()),
            ..RunConfig::default()
        };
        let (cold, cold_stats) = run(&spec, &cfg).unwrap();
        assert_eq!(cold_stats.cache_hits, 0);
        assert_eq!(cold_stats.cache_misses, cold_stats.points as u64);
        // Cold points are misses with real engine counters attached.
        assert_eq!(cold_stats.spans.len(), cold_stats.points);
        assert!(cold_stats
            .spans
            .iter()
            .all(|s| s.cache == CacheStatus::Miss
                && s.stats.is_some_and(|st| st.events_processed > 0)));
        let (warm, warm_stats) = run(&spec, &cfg).unwrap();
        assert_eq!(warm_stats.cache_hits, warm_stats.points as u64);
        assert_eq!(warm_stats.cache_misses, 0);
        // Warm spans are hits with no stats: no simulator ran.
        assert!(warm_stats
            .spans
            .iter()
            .all(|s| s.cache == CacheStatus::Hit && s.stats.is_none()));
        let summary = warm_stats.summary.as_ref().unwrap();
        assert_eq!(summary.cached, warm_stats.points);
        assert_eq!(summary.events, 0);
        assert_eq!(json_of(&cold), json_of(&warm));
        assert_eq!(cold.to_csv(), warm.to_csv());
        // And identical to an uncached run.
        let (plain, plain_stats) = run(&spec, &RunConfig::default()).unwrap();
        assert_eq!(json_of(&plain), json_of(&cold));
        assert!(plain_stats
            .spans
            .iter()
            .all(|s| s.cache == CacheStatus::Computed));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unspawnable_worker_falls_back_to_threads() {
        let spec = builtin("fig6-small").unwrap();
        let cfg = RunConfig {
            procs: 3,
            worker_exe: Some(Path::new("/nonexistent/xp-worker-binary").to_path_buf()),
            ..RunConfig::default()
        };
        let (out, stats) = run(&spec, &cfg).unwrap();
        assert!(stats.fallback.is_some(), "must report the fallback");
        // The fallback attempt still produces a full span table.
        assert_eq!(stats.spans.len(), stats.points);
        let (plain, _) = run(&spec, &RunConfig::default()).unwrap();
        assert_eq!(json_of(&out), json_of(&plain));
    }

    #[test]
    fn trace_scenarios_cache_too() {
        let dir = tmp_dir("trace");
        let spec = builtin("fig2").unwrap();
        let cfg = RunConfig {
            cache_dir: Some(dir.clone()),
            ..RunConfig::default()
        };
        let (cold, s1) = run(&spec, &cfg).unwrap();
        let (warm, s2) = run(&spec, &cfg).unwrap();
        assert_eq!(s1.cache_misses, 1);
        assert_eq!(s2.cache_hits, 1);
        assert_eq!(json_of(&cold), json_of(&warm));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ndjson_log_rides_along_without_touching_the_report() {
        let dir = tmp_dir("ndjson");
        std::fs::create_dir_all(&dir).unwrap();
        let spec = builtin("fig6-small").unwrap();
        let log = dir.join("run.ndjson");
        let cfg = RunConfig {
            threads: 2,
            log_json: Some(log.clone()),
            ..RunConfig::default()
        };
        let (logged, _) = run(&spec, &cfg).unwrap();
        let (plain, _) = run(&spec, &RunConfig::default()).unwrap();
        assert_eq!(json_of(&logged), json_of(&plain), "log must not perturb");
        let text = std::fs::read_to_string(&log).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), spec.num_points() + 1, "spans + summary");
        for line in &lines {
            dcn_scenarios::diff::parse_json(line).expect("well-formed NDJSON");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
