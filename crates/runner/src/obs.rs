//! Run-wide observability for the runner: the [`RunObserver`] behind
//! `xp run --progress` / `--log-json`, and the versioned `--meta`
//! sidecar renderer.
//!
//! The observer receives one [`SpanRecord`] per completed point from
//! whichever execution path ran it — the in-process executors report
//! through the `dcn_scenarios::Observer` trait, the multi-process
//! parent replays the spans its workers shipped over the result
//! protocol — and fans each span out to:
//!
//! * the `--log-json` NDJSON stream (one span record per line, one
//!   summary record at the end),
//! * the `--progress` stderr line (`done/total (cached k) · ETA ..s`,
//!   redrawn in place),
//! * the in-memory span table that [`RunObserver::finish`] rolls up
//!   into a [`SummaryRecord`] and the `--meta` sidecar.
//!
//! None of this touches the byte-pinned report path: spans are derived
//! from outcome sidecars and wall clocks, and reports are identical
//! with observation on or off.

// Wall-clock reads are this module's purpose (R2-allowlisted in dcn-lint).
#![allow(clippy::disallowed_methods)]

use crate::codec::jstr;
use crate::exec::RunStats;
use dcn_scenarios::{spec_kind, CacheStatus, Observer, ScenarioSpec, SpanRecord, SummaryRecord};
use dcn_sim::SimStats;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// Version of the `--meta` sidecar schema. Bump when keys change shape
/// or meaning so downstream consumers can dispatch.
pub const META_VERSION: u32 = 1;

struct Inner {
    spans: Vec<SpanRecord>,
    cached: usize,
    log: Option<File>,
}

/// Collects spans from a run and drives the `--progress` line and the
/// `--log-json` NDJSON stream. One observer per run attempt: the
/// multi-process fallback path builds a fresh one so a failed attempt
/// cannot double-count (and the log file holds only the run that
/// succeeded).
pub struct RunObserver {
    total: usize,
    progress: bool,
    t0: Instant,
    inner: Mutex<Inner>,
}

impl RunObserver {
    /// An observer for a run of `total` points. `log_json` opens (and
    /// truncates) the NDJSON sink eagerly so a bad path fails the run
    /// up front, not after minutes of compute.
    pub fn new(total: usize, progress: bool, log_json: Option<&Path>) -> Result<Self, String> {
        let log = match log_json {
            Some(path) => Some(
                File::create(path)
                    .map_err(|e| format!("cannot write --log-json {}: {e}", path.display()))?,
            ),
            None => None,
        };
        Ok(RunObserver {
            total,
            progress,
            t0: Instant::now(),
            inner: Mutex::new(Inner {
                spans: Vec::with_capacity(total),
                cached: 0,
                log,
            }),
        })
    }

    /// Record one completed span: append to the NDJSON stream, redraw
    /// the progress line, remember it for the roll-up. Shared by the
    /// `Observer` impl (in-process runs) and the multi-process parent
    /// (which replays worker-shipped spans).
    pub fn record(&self, span: SpanRecord) {
        let mut inner = self.inner.lock().expect("observer poisoned");
        if let Some(log) = &mut inner.log {
            let _ = writeln!(log, "{}", span.to_json());
        }
        if span.cache == CacheStatus::Hit {
            inner.cached += 1;
        }
        inner.spans.push(span);
        if self.progress {
            let done = inner.spans.len();
            let elapsed = self.t0.elapsed().as_secs_f64();
            let eta = if done > 0 && done < self.total {
                elapsed / done as f64 * (self.total - done) as f64
            } else {
                0.0
            };
            eprint!(
                "\r{}/{} ({} cached) · ETA {:.1}s ",
                done, self.total, inner.cached, eta
            );
            if done >= self.total {
                eprintln!();
            }
        }
    }

    /// Close out the run: sort spans into index order, derive the
    /// [`SummaryRecord`] (total wall clock, cached count, summed event
    /// counts), and append the summary record to the NDJSON stream.
    pub fn finish(self, name: &str, kind: &str) -> (Vec<SpanRecord>, SummaryRecord) {
        let inner = self.inner.into_inner().expect("observer poisoned");
        let mut spans = inner.spans;
        if self.progress && spans.len() < self.total {
            eprintln!();
        }
        spans.sort_by_key(|s| s.index);
        let events = spans
            .iter()
            .filter_map(|s| s.stats.as_ref())
            .map(|s| s.events_processed)
            .sum();
        let summary = SummaryRecord {
            name: name.into(),
            kind: kind.into(),
            points: spans.len(),
            cached: inner.cached,
            wall_ms: self.t0.elapsed().as_secs_f64() * 1e3,
            events,
        };
        if let Some(mut log) = inner.log {
            let _ = writeln!(log, "{}", summary.to_json());
            let _ = log.flush();
        }
        (spans, summary)
    }
}

impl Observer for RunObserver {
    fn span(&self, span: &SpanRecord) {
        self.record(span.clone());
    }
}

/// Sum a [`SimStats`] field over every span that carried stats.
fn sum_stats(stats: &RunStats, f: impl Fn(&SimStats) -> u64) -> u64 {
    stats
        .spans
        .iter()
        .filter_map(|s| s.stats.as_ref())
        .map(&f)
        .sum()
}

/// The `--meta` sidecar: run metadata as JSON, versioned under
/// [`META_VERSION`]. Kept *outside* the result reports so a cold and a
/// warm cache run (or 1 vs 8 procs) still write byte-identical report
/// files — this is where the non-deterministic numbers (wall clock,
/// events/sec, per-span timings) live.
pub fn meta_json(
    spec: &ScenarioSpec,
    threads: usize,
    cache_enabled: bool,
    stats: &RunStats,
) -> String {
    let (wall_ms, events, eps) = match &stats.summary {
        Some(s) => (s.wall_ms, s.events, s.events_per_sec()),
        None => (0.0, 0, 0.0),
    };
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"meta_version\": {META_VERSION},\n"));
    s.push_str(&format!("  \"scenario\": {},\n", jstr(&spec.name)));
    s.push_str(&format!("  \"kind\": \"{}\",\n", spec_kind(spec)));
    s.push_str(&format!("  \"points\": {},\n", stats.points));
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!("  \"procs\": {},\n", stats.procs));
    s.push_str(&format!("  \"cache_enabled\": {cache_enabled},\n"));
    s.push_str(&format!("  \"cache_hits\": {},\n", stats.cache_hits));
    s.push_str(&format!("  \"cache_misses\": {},\n", stats.cache_misses));
    s.push_str(&format!(
        "  \"fallback\": {},\n",
        match &stats.fallback {
            Some(why) => jstr(why),
            None => "null".into(),
        }
    ));
    s.push_str(&format!(
        "  \"engine_version\": {},\n",
        dcn_sim::ENGINE_VERSION
    ));
    s.push_str(&format!("  \"key_format\": {},\n", crate::KEY_FORMAT));
    s.push_str(&format!("  \"wall_ms\": {wall_ms:.3},\n"));
    s.push_str(&format!("  \"events\": {events},\n"));
    s.push_str(&format!("  \"events_per_sec\": {eps:.1},\n"));
    s.push_str(&format!(
        "  \"drops\": {{\"no_route\": {}, \"buffer\": {}, \"custom\": {}, \"pfc_frames\": {}}},\n",
        sum_stats(stats, |s| s.drops_no_route),
        sum_stats(stats, |s| s.drops_buffer),
        sum_stats(stats, |s| s.drops_custom),
        sum_stats(stats, |s| s.pfc_frames),
    ));
    s.push_str(&format!(
        "  \"pool\": {{\"fresh\": {}, \"reused\": {}}},\n",
        sum_stats(stats, |s| s.pool_fresh),
        sum_stats(stats, |s| s.pool_reused),
    ));
    s.push_str("  \"spans\": [\n");
    for (i, span) in stats.spans.iter().enumerate() {
        s.push_str("    ");
        s.push_str(&span.to_json());
        s.push_str(if i + 1 == stats.spans.len() {
            "\n"
        } else {
            ",\n"
        });
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_scenarios::builtin;
    use dcn_scenarios::diff::{parse_json, Json};

    fn stats_with_spans() -> RunStats {
        let sim = SimStats {
            events_processed: 100,
            events_scheduled: 120,
            overflow_scheduled: 1,
            batched_visits: 6,
            batched_events: 8,
            delivered: 40,
            forwarded: 80,
            drops_no_route: 1,
            drops_buffer: 2,
            drops_custom: 3,
            pfc_frames: 4,
            pool_fresh: 5,
            pool_reused: 95,
            wall_ms: 10.0,
        };
        RunStats {
            points: 2,
            cache_hits: 1,
            cache_misses: 1,
            procs: 1,
            fallback: None,
            spans: vec![
                SpanRecord {
                    index: 0,
                    label: "powertcp/load0.60/seed1".into(),
                    cache: CacheStatus::Miss,
                    shard: None,
                    wall_ms: 10.0,
                    stats: Some(sim),
                },
                SpanRecord {
                    index: 1,
                    label: "powertcp/load0.80/seed1".into(),
                    cache: CacheStatus::Hit,
                    shard: None,
                    wall_ms: 0.1,
                    stats: None,
                },
            ],
            summary: Some(SummaryRecord {
                name: "fig6-small".into(),
                kind: "sweep".into(),
                points: 2,
                cached: 1,
                wall_ms: 20.0,
                events: 100,
            }),
        }
    }

    #[test]
    fn meta_sidecar_has_the_versioned_schema_shape() {
        let spec = builtin("fig6-small").unwrap();
        let meta = meta_json(&spec, 2, true, &stats_with_spans());
        let Json::Obj(members) = parse_json(&meta).expect("valid JSON") else {
            panic!("meta must be an object");
        };
        let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "meta_version",
                "scenario",
                "kind",
                "points",
                "threads",
                "procs",
                "cache_enabled",
                "cache_hits",
                "cache_misses",
                "fallback",
                "engine_version",
                "key_format",
                "wall_ms",
                "events",
                "events_per_sec",
                "drops",
                "pool",
                "spans",
            ]
        );
        assert_eq!(members[0].1, Json::Int(META_VERSION as i128));
        // Aggregates come from the spans that carried stats.
        let drops = members.iter().find(|(k, _)| k == "drops").unwrap();
        let Json::Obj(d) = &drops.1 else {
            panic!("drops object")
        };
        assert_eq!(d[0], ("no_route".into(), Json::Int(1)));
        assert_eq!(d[3], ("pfc_frames".into(), Json::Int(4)));
        let spans = members.iter().find(|(k, _)| k == "spans").unwrap();
        let Json::Arr(sp) = &spans.1 else {
            panic!("spans array")
        };
        assert_eq!(sp.len(), 2);
    }

    #[test]
    fn observer_streams_ndjson_and_rolls_up() {
        let dir = std::env::temp_dir().join(format!("xp-obs-test-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let log = dir.join("run.ndjson");
        let obs = RunObserver::new(2, false, Some(&log)).unwrap();
        let st = stats_with_spans();
        // Feed out of order: finish() must sort by index.
        obs.record(st.spans[1].clone());
        obs.record(st.spans[0].clone());
        let (spans, summary) = obs.finish("fig6-small", "sweep");
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].index, 0);
        assert_eq!(summary.points, 2);
        assert_eq!(summary.cached, 1);
        assert_eq!(summary.events, 100);
        let text = std::fs::read_to_string(&log).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "2 spans + 1 summary");
        for line in &lines {
            parse_json(line).expect("every NDJSON line parses");
        }
        assert!(lines[2].starts_with("{\"record\":\"summary\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_log_path_fails_up_front() {
        let err = RunObserver::new(1, false, Some(Path::new("/nonexistent-dir/x.ndjson")));
        assert!(err.is_err());
    }
}
