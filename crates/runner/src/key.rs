//! Content-addressed cache keys for point outcomes.
//!
//! A key is derived from a *canonical byte encoding* of everything that
//! determines a point result: the spec's result-affecting fragment
//! ([`ScenarioSpec::cache_fragment`] — topology, workload, horizon,
//! trace or analytic config; never the name, description, or sweep
//! axes), the point coordinates (`algo`, `param`, `load`, `seed` — or
//! lineup entry for traces and analytic grids), a behavioral version
//! salt ([`dcn_sim::ENGINE_VERSION`] for packet-simulated kinds,
//! [`dcn_flow::FLOW_ENGINE_VERSION`] for flow-engine sweeps,
//! [`fluid_model::MODEL_VERSION`] for analytic ones — each engine's
//! cache survives hot-path work in the others), and the key-format
//! version. The canonical string is hashed with a small vendored FNV-1a
//! (64-bit) to name the cache file; the full canonical string is stored
//! *inside* the entry and compared byte-for-byte on every load, so a
//! hash collision (or a stale file from an older format) is detected and
//! treated as a miss, never served.

use dcn_scenarios::{ScenarioSpec, SweepPoint, TraceEntrySpec};

/// Version of the canonical key encoding itself. Bump when the encoding
/// below changes shape, so old entries miss instead of mis-validating.
/// (2: `param=` line in sweep-point keys; analytic kind salted by the
/// fluid-model version.)
pub const KEY_FORMAT: u32 = 2;

/// A derived cache key: the content hash (file name) plus the canonical
/// encoding it was derived from (stored in the entry for validation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheKey {
    /// FNV-1a 64-bit hash of `canon`.
    pub hash: u64,
    /// The canonical byte encoding of the point's identity.
    pub canon: String,
}

impl CacheKey {
    fn from_canon(canon: String) -> CacheKey {
        CacheKey {
            hash: fnv1a64(canon.as_bytes()),
            canon,
        }
    }

    /// The cache file name this key addresses (`<hash>.json`).
    pub fn file_name(&self) -> String {
        format!("{:016x}.json", self.hash)
    }
}

/// Vendored FNV-1a, 64-bit: the canonical offset-basis/prime constants,
/// one multiply and xor per byte. Collisions are tolerable because every
/// hit is validated against the stored canonical encoding.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shared key preamble: format + behavioral-version salt + spec
/// fragment. Analytic specs never touch the simulator, so their salt is
/// the fluid-model version; flow-engine sweeps never touch the
/// packet simulator either, so they carry the flow-engine version —
/// bumping one engine leaves the other kinds' caches warm.
fn preamble(spec: &ScenarioSpec) -> String {
    let salt = if spec.analytic().is_some() {
        format!("fluid-model-version={}", fluid_model::MODEL_VERSION)
    } else if spec.engine == dcn_scenarios::EngineKind::Flow {
        format!("flow-engine-version={}", dcn_flow::FLOW_ENGINE_VERSION)
    } else {
        format!("engine-version={}", dcn_sim::ENGINE_VERSION)
    };
    format!(
        "key-format={}\n{}\n--- spec ---\n{}",
        KEY_FORMAT,
        salt,
        spec.cache_fragment()
    )
}

/// Key of one FCT sweep point. The load is encoded as its exact IEEE-754
/// bit pattern — two loads that differ in the last ulp are different
/// points.
pub fn point_key(spec: &ScenarioSpec, point: &SweepPoint) -> CacheKey {
    CacheKey::from_canon(format!(
        "{}--- point ---\nkind=sweep\nalgo={}\nparam={}\nload-bits={:016x}\nseed={}\n",
        preamble(spec),
        point.algo.key(),
        point.param.label(),
        point.load.to_bits(),
        point.seed
    ))
}

/// Key of one timeseries *or analytic* lineup entry (both kinds carry
/// exactly one placeholder seed; the label — algorithm/prebuffer for
/// traces, the grid-point identity for analytic entries — distinguishes
/// expanded entries, and the analytic grids themselves live in the spec
/// fragment).
pub fn entry_key(spec: &ScenarioSpec, entry: &TraceEntrySpec) -> CacheKey {
    let seed = spec.sweep.seeds.first().copied().unwrap_or(0);
    let kind = if spec.analytic().is_some() {
        "analytic"
    } else {
        "trace"
    };
    CacheKey::from_canon(format!(
        "{}--- point ---\nkind={kind}\nlabel={}\nalgo={}\nprebuffer-ps={}\nseed={}\n",
        preamble(spec),
        entry.label,
        entry.algo.key(),
        entry.prebuffer.as_ps(),
        seed
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_scenarios::{builtin, sweep_points, trace_entries, Algo};

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Canonical FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn keys_separate_points_and_ignore_identity_fields() {
        let spec = builtin("fig6").unwrap();
        let pts = sweep_points(&spec);
        let keys: Vec<CacheKey> = pts.iter().map(|p| point_key(&spec, p)).collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a.canon, b.canon);
                assert_ne!(a.hash, b.hash);
            }
        }
        // Renaming the scenario or trimming the sweep grid does not move
        // point keys: the fragment excludes identity and axes.
        let renamed = spec.clone().describe("something else");
        let mut renamed = renamed;
        renamed.name = "other-name".into();
        renamed.sweep.loads.truncate(1);
        assert_eq!(point_key(&renamed, &pts[0]), keys[0]);
    }

    #[test]
    fn keys_depend_on_physics_and_salt_inputs() {
        let spec = builtin("fig6").unwrap();
        let p = sweep_points(&spec)[0];
        let base = point_key(&spec, &p);
        let mut hotter = spec.clone();
        hotter.horizon_ms += 1.0;
        assert_ne!(point_key(&hotter, &p), base);
        let mut other_seed = p;
        other_seed.seed ^= 1;
        assert_ne!(point_key(&spec, &other_seed), base);
        assert!(base.canon.contains("engine-version="));
        assert_eq!(base.file_name(), format!("{:016x}.json", base.hash));
    }

    #[test]
    fn param_axis_separates_sweep_point_keys() {
        let spec = builtin("gamma-sweep").unwrap();
        let pts = sweep_points(&spec);
        assert_eq!(pts.len(), 2);
        let a = point_key(&spec, &pts[0]);
        let b = point_key(&spec, &pts[1]);
        assert_ne!(a.canon, b.canon, "gamma grid must separate keys");
        assert!(a.canon.contains("param=gamma=0.5"), "{}", a.canon);
        // Default-param points carry an empty param line (stable canon).
        let plain = builtin("fig6-small").unwrap();
        let k = point_key(&plain, &sweep_points(&plain)[0]);
        assert!(k.canon.contains("param=\n"), "{}", k.canon);
    }

    #[test]
    fn flow_engine_sweeps_carry_their_own_version_salt() {
        let packet = builtin("fig7").unwrap();
        let flow = builtin("fig7-flow").unwrap();
        let pk = point_key(&packet, &sweep_points(&packet)[0]);
        let fk = point_key(&flow, &sweep_points(&flow)[0]);
        // Packet keys are salted by the simulator version only; flow keys
        // by the flow-engine version only — so bumping one engine leaves
        // the other's cache warm.
        assert!(pk.canon.contains("engine-version="), "{}", pk.canon);
        assert!(!pk.canon.contains("flow-engine-version="), "{}", pk.canon);
        assert!(fk.canon.contains("flow-engine-version="), "{}", fk.canon);
        assert!(!fk.canon.contains("\nengine-version="), "{}", fk.canon);
        // Switching a spec's engine moves every point key: the engine
        // selects physics, so it must never alias across engines.
        let mut as_packet = flow.clone();
        as_packet.engine = dcn_scenarios::EngineKind::Packet;
        assert_ne!(point_key(&as_packet, &sweep_points(&flow)[0]), fk);
    }

    #[test]
    fn trace_entry_keys_separate_lineup_entries() {
        let spec = builtin("fig8").unwrap();
        let entries = trace_entries(&spec);
        assert!(entries.len() >= 3);
        let keys: Vec<CacheKey> = entries.iter().map(|e| entry_key(&spec, e)).collect();
        for (i, a) in keys.iter().enumerate() {
            for b in &keys[i + 1..] {
                assert_ne!(a.canon, b.canon, "reTCP prebuffers must separate");
            }
        }
        // Same algo at different prebuffers differs only by the point
        // section.
        let retcp: Vec<&TraceEntrySpec> =
            entries.iter().filter(|e| e.algo == Algo::ReTcp).collect();
        assert_eq!(retcp.len(), 2);
        assert_ne!(
            entry_key(&spec, retcp[0]).hash,
            entry_key(&spec, retcp[1]).hash
        );
    }
}
