//! # dcn-runner
//!
//! The execution layer above the `dcn-scenarios` experiment subsystem:
//! incremental re-runs and process-level scale-out for the ever-growing
//! sweep surface, without giving up one byte of the determinism
//! contract.
//!
//! ## The pieces
//!
//! * [`key`] — content-addressed cache keys: a canonical byte encoding
//!   of `(spec fragment, algo, load, seed)` salted with
//!   [`dcn_sim::ENGINE_VERSION`] and hashed with a vendored FNV-1a;
//!   validated byte-for-byte on every hit.
//! * [`codec`] — bit-exact outcome serialization (`f64` as IEEE-754 bit
//!   patterns): cached and worker-transported results are
//!   indistinguishable from freshly computed ones.
//! * [`cache`] — the `.xp-cache/<hash>.json` store: atomic writes,
//!   corruption-tolerant reads (anything invalid is a miss).
//! * [`exec`] — [`exec::run`]: cache-aware in-process execution
//!   (a [`exec::CachingSource`] plugged into the `PointSource`-generic
//!   executors of `dcn-scenarios`) and multi-process sharded execution
//!   (`--procs N`), with clean fallback to threads.
//! * [`worker`] — the `xp worker` protocol: shard manifest on stdin,
//!   bit-exact outcome lines on stdout (each with its wall clock and
//!   engine counters), order-stable merge by index.
//! * [`obs`] — the [`obs::RunObserver`] behind `xp run --progress` and
//!   `--log-json`, and the versioned `--meta` sidecar renderer.
//! * [`dirdiff`] — `xp diff` over directories of reports.
//!
//! The `xp serve` daemon lives in `dcn-serve` (a pure scheduling and
//! transport layer); this crate injects the execution half through
//! [`exec::serve_run_fn`] / [`exec::serve_stat_fn`].
//!
//! The `xp` CLI binary lives here (it needs the cache and the process
//! runner); `dcn-scenarios` stays a pure library.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod codec;
pub mod dirdiff;
pub mod exec;
pub mod key;
pub mod obs;
pub mod worker;

pub use cache::{CacheStat, CacheStatDetail, ResultCache, CACHE_FORMAT};
pub use codec::Outcome;
pub use dirdiff::{diff_dirs, DirDiffOutcome, FileDiff};
pub use exec::{run, serve_run_fn, serve_stat_fn, CachingSource, RunConfig, RunStats};
pub use key::{entry_key, fnv1a64, point_key, CacheKey, KEY_FORMAT};
pub use obs::{meta_json, RunObserver, META_VERSION};
pub use worker::worker_main;
