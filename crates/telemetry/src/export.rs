//! Deterministic trace reports: JSON / CSV / markdown rendering of
//! recorded channels.
//!
//! Rendering is hand-rolled with fixed field order and shortest-round-trip
//! float formatting, mirroring the sweep reports of `dcn-scenarios`: the
//! same trace renders byte-identically across runs and thread counts (the
//! determinism contract golden-tested in `crates/scenarios/tests/`).

use crate::probe::{Channel, Sample};
use crate::reduce::{decimate, window_mean};

/// One exported channel: metadata plus (decimated) samples.
#[derive(Clone, Debug, PartialEq)]
pub struct ChannelTrace {
    /// Channel name.
    pub name: String,
    /// Value unit.
    pub unit: String,
    /// X-axis unit.
    pub x_unit: String,
    /// Samples collected over the whole run (before ring eviction and
    /// decimation).
    pub total_samples: u64,
    /// Samples evicted by the ring (oldest-first).
    pub evicted: u64,
    /// Exported samples (ring contents, decimated).
    pub samples: Vec<Sample>,
}

impl ChannelTrace {
    /// Export a recorder channel, decimating to at most `max_rows` rows.
    pub fn from_channel(ch: &Channel, max_rows: usize) -> Self {
        Self::from_channel_windowed(ch, max_rows, 1)
    }

    /// Export a recorder channel through the windowed-mean reducer
    /// (consecutive windows of `window` kept samples averaged; 1 = off)
    /// before decimating to at most `max_rows` rows. `total_samples` and
    /// `evicted` keep counting *raw* samples — windowing is an export
    /// reduction, not a recording change.
    pub fn from_channel_windowed(ch: &Channel, max_rows: usize, window: usize) -> Self {
        let kept = ch.ring.to_vec();
        let reduced = if window > 1 {
            window_mean(&kept, window)
        } else {
            kept
        };
        ChannelTrace {
            name: ch.name.clone(),
            unit: ch.unit.clone(),
            x_unit: ch.x_unit.clone(),
            total_samples: ch.ring.len() as u64 + ch.ring.evicted(),
            evicted: ch.ring.evicted(),
            samples: decimate(&reduced, max_rows),
        }
    }
}

/// One traced run (one algorithm / lineup entry of a trace scenario).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEntry {
    /// Entry label ("PowerTCP-INT", "reTCP-600us", …).
    pub label: String,
    /// Scalar reductions, in insertion order (name, value).
    pub stats: Vec<(String, f64)>,
    /// Recorded channels, in creation order.
    pub channels: Vec<ChannelTrace>,
}

impl TraceEntry {
    /// Look up a stat by name.
    pub fn stat(&self, name: &str) -> Option<f64> {
        self.stats.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a channel by name.
    pub fn channel(&self, name: &str) -> Option<&ChannelTrace> {
        self.channels.iter().find(|c| c.name == name)
    }
}

/// The full, structured result of a trace scenario: one entry per traced
/// run, rendered as JSON, CSV, or a markdown stat table.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceReport {
    /// Scenario name.
    pub name: String,
    /// Scenario description.
    pub description: String,
    /// One entry per traced run, in lineup order.
    pub entries: Vec<TraceEntry>,
}

impl TraceReport {
    /// Render as JSON (fixed field order, shortest-round-trip floats;
    /// byte-identical for identical traces).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"scenario\": {},\n", jstr(&self.name)));
        out.push_str(&format!(
            "  \"description\": {},\n",
            jstr(&self.description)
        ));
        out.push_str("  \"kind\": \"timeseries\",\n");
        out.push_str("  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"label\": {},\n", jstr(&e.label)));
            out.push_str("      \"stats\": {");
            for (j, (k, v)) in e.stats.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{}: {}", jstr(k), jf(*v)));
            }
            out.push_str("},\n");
            out.push_str("      \"channels\": [\n");
            for (j, c) in e.channels.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"name\": {}, \"unit\": {}, \"x_unit\": {}, \
                     \"total_samples\": {}, \"evicted\": {}, \"samples\": [",
                    jstr(&c.name),
                    jstr(&c.unit),
                    jstr(&c.x_unit),
                    c.total_samples,
                    c.evicted
                ));
                for (k, s) in c.samples.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("[{}, {}]", jf(s.x), jf(s.y)));
                }
                out.push_str("]}");
                out.push_str(if j + 1 < e.channels.len() {
                    ",\n"
                } else {
                    "\n"
                });
            }
            out.push_str("      ]\n");
            out.push_str("    }");
            out.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Render as long-format CSV: one row per exported sample.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("scenario,entry,channel,unit,x_unit,x,value\n");
        for e in &self.entries {
            for c in &e.channels {
                for s in &c.samples {
                    out.push_str(&format!(
                        "{},{},{},{},{},{},{}\n",
                        csv_escape(&self.name),
                        csv_escape(&e.label),
                        csv_escape(&c.name),
                        csv_escape(&c.unit),
                        csv_escape(&c.x_unit),
                        jf(s.x),
                        jf(s.y)
                    ));
                }
            }
        }
        out
    }

    /// Render the entry stats as a human-readable markdown table (one row
    /// per entry; columns are the union of stat names in first-seen
    /// order, so lineups with per-entry stat sets — analytic grids —
    /// still show everything).
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("\n## {} — {}\n\n", self.name, self.description));
        if self.entries.is_empty() {
            return out;
        }
        let mut cols: Vec<&str> = Vec::new();
        for e in &self.entries {
            for (k, _) in &e.stats {
                if !cols.contains(&k.as_str()) {
                    cols.push(k);
                }
            }
        }
        out.push_str(&format!("| entry | {} |\n", cols.join(" | ")));
        out.push_str(&format!(
            "|---|{}|\n",
            cols.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        ));
        for e in &self.entries {
            let cells: Vec<String> = cols
                .iter()
                .map(|c| e.stat(c).map(fmt_compact).unwrap_or_else(|| "-".into()))
                .collect();
            out.push_str(&format!("| {} | {} |\n", e.label, cells.join(" | ")));
        }
        out
    }
}

/// JSON string escape.
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number (shortest round-trip; non-finite becomes null).
fn jf(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Compact float for tables.
fn fmt_compact(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Recorder;
    use powertcp_core::Tick;

    fn sample_report() -> TraceReport {
        let mut r = Recorder::new(Tick::from_micros(10), 64);
        let q = r.channel("queue", "bytes");
        let p = r.channel_with_x("md", "factor", "qdot_over_bw");
        for i in 0..5 {
            r.record_at(q, Tick::from_micros(10 * (i + 1)), (i * 100) as f64);
        }
        r.record(p, 0.0, 1.0);
        r.record(p, 8.0, 9.0);
        TraceReport {
            name: "t".into(),
            description: "test trace".into(),
            entries: vec![TraceEntry {
                label: "PowerTCP-INT".into(),
                stats: vec![("peak".into(), 400.0), ("jain".into(), 0.987)],
                channels: r
                    .channels()
                    .iter()
                    .map(|c| ChannelTrace::from_channel(c, 4))
                    .collect(),
            }],
        }
    }

    #[test]
    fn json_is_well_formed_and_stable() {
        let r = sample_report();
        let j = r.to_json();
        assert_eq!(j, sample_report().to_json());
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(j.contains("\"scenario\": \"t\""));
        assert!(j.contains("\"kind\": \"timeseries\""));
        assert!(j.contains("\"peak\": 400"));
        assert!(j.contains("\"x_unit\": \"qdot_over_bw\""));
    }

    #[test]
    fn csv_is_long_format_with_header() {
        let r = sample_report();
        let csv = r.to_csv();
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "scenario,entry,channel,unit,x_unit,x,value"
        );
        // queue decimated 5 -> <= 4 rows, md has 2 rows.
        let rows: Vec<&str> = lines.collect();
        assert!(rows.len() <= 6 && rows.len() >= 4, "{}", rows.len());
        assert!(rows.iter().all(|r| r.starts_with("t,PowerTCP-INT,")));
    }

    #[test]
    fn decimation_and_eviction_metadata_survive_export() {
        let mut r = Recorder::new(Tick::from_micros(1), 8);
        let c = r.channel("c", "u");
        for i in 0..20 {
            r.record(c, i as f64, i as f64);
        }
        let t = ChannelTrace::from_channel(r.get(c), 4);
        assert_eq!(t.total_samples, 20);
        assert_eq!(t.evicted, 12);
        assert!(t.samples.len() <= 4);
        assert_eq!(t.samples[0].x, 12.0); // oldest kept sample
    }

    #[test]
    fn table_lists_entries_by_stat_columns() {
        let t = sample_report().table();
        assert!(t.contains("| entry | peak | jain |"));
        assert!(t.contains("| PowerTCP-INT | 400 | 0.9870 |"));
    }
}
