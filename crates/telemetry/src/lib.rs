//! # dcn-telemetry
//!
//! First-class time-series measurement for the PowerTCP reproduction:
//! the probe framework behind the `timeseries` scenario kind of
//! `dcn-scenarios` and the paper's temporal figures (fig 2/4/5/8 —
//! queue reaction, convergence, fairness, circuit utilization over time).
//!
//! ## The pieces
//!
//! * [`ring`] — [`RingBuffer`]: fixed-capacity, oldest-first-evicting
//!   sample storage, so long horizons collect in bounded memory with an
//!   explicit evicted count (no silent truncation).
//! * [`probe`] — [`Recorder`]: named channels ("queue", "throughput",
//!   "cwnd", "power", …) on a configurable sampling tick; simulator
//!   tracers record into a [`SharedRecorder`] handle.
//! * [`reduce`] — deterministic downsampling (stride [`decimate`],
//!   [`window_mean`]) and scalar reductions ([`summarize`],
//!   [`mean_after`], [`max_after`], [`min_within`]).
//! * [`export`] — [`TraceReport`]: fixed-field-order JSON, long-format
//!   CSV, and markdown stat tables, byte-identical across runs and
//!   thread counts.
//!
//! The probes themselves live where the state is: `dcn-sim::trace` hooks
//! switch egress queues and link TX counters, `dcn-transport` exposes
//! per-flow cwnd / pacing rate / PowerTCP Γ through the
//! `Endpoint::cc_samples` hook, and `dcn-scenarios::trace_engine` wires
//! them to a recorder per traced run.
//!
//! ## Example
//!
//! ```
//! use dcn_telemetry::{ChannelTrace, Recorder, TraceEntry, TraceReport};
//! use powertcp_core::Tick;
//!
//! let mut rec = Recorder::new(Tick::from_micros(10), 1024);
//! let q = rec.channel("queue", "bytes");
//! for us in [10u64, 20, 30] {
//!     rec.record_at(q, Tick::from_micros(us), us as f64 * 100.0);
//! }
//! let report = TraceReport {
//!     name: "demo".into(),
//!     description: "three samples".into(),
//!     entries: vec![TraceEntry {
//!         label: "PowerTCP-INT".into(),
//!         stats: vec![("peak_queue_bytes".into(), 3000.0)],
//!         channels: rec
//!             .channels()
//!             .iter()
//!             .map(|c| ChannelTrace::from_channel(c, 100))
//!             .collect(),
//!     }],
//! };
//! assert!(report.to_csv().contains("demo,PowerTCP-INT,queue,bytes,time_us,10,1000"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod probe;
pub mod reduce;
pub mod ring;

pub use export::{ChannelTrace, TraceEntry, TraceReport};
pub use probe::{Channel, ChannelId, Recorder, Sample, SharedRecorder, X_TIME_US};
pub use reduce::{
    decimate, max_after, mean_after, min_within, summarize, window_mean, SeriesSummary,
};
pub use ring::RingBuffer;
