//! A fixed-capacity ring buffer for deterministic sample collection.
//!
//! Probes sample on a tick grid for the whole run; the ring bounds memory
//! no matter how long the horizon is. Eviction is strictly
//! oldest-first and the evicted count is kept, so a trace report can say
//! "kept the last N of M samples" instead of silently truncating.

/// Fixed-capacity FIFO ring. Pushing beyond capacity evicts the oldest
/// element; iteration is always oldest → newest.
#[derive(Clone, Debug)]
pub struct RingBuffer<T> {
    buf: Vec<T>,
    /// Index of the oldest element (only meaningful once full).
    head: usize,
    cap: usize,
    evicted: u64,
}

impl<T> RingBuffer<T> {
    /// Create a ring holding at most `cap` elements (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "ring capacity must be >= 1");
        RingBuffer {
            buf: Vec::with_capacity(cap.min(1024)),
            head: 0,
            cap,
            evicted: 0,
        }
    }

    /// Capacity the ring was created with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Elements currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Elements evicted so far (total pushed = `len() + evicted()`).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Append an element, evicting the oldest if full.
    pub fn push(&mut self, v: T) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.head] = v;
            self.head = (self.head + 1) % self.cap;
            self.evicted += 1;
        }
    }

    /// Iterate oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (tail, head) = self.buf.split_at(self.head);
        head.iter().chain(tail.iter())
    }

    /// Copy out the contents, oldest → newest.
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_evicts_oldest_first() {
        let mut r = RingBuffer::new(3);
        assert!(r.is_empty());
        for i in 0..3 {
            r.push(i);
        }
        assert_eq!(r.to_vec(), vec![0, 1, 2]);
        assert_eq!(r.evicted(), 0);
        r.push(3);
        r.push(4);
        assert_eq!(r.to_vec(), vec![2, 3, 4]);
        assert_eq!(r.evicted(), 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r.capacity(), 3);
    }

    #[test]
    fn wraparound_keeps_order_over_many_pushes() {
        let mut r = RingBuffer::new(5);
        for i in 0..1000 {
            r.push(i);
        }
        assert_eq!(r.to_vec(), vec![995, 996, 997, 998, 999]);
        assert_eq!(r.evicted(), 995);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let _ = RingBuffer::<i32>::new(0);
    }
}
