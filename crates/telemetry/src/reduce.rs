//! Downsampling and reduction of sample streams.
//!
//! Traces sampled on a fine tick grid are too dense to export or eyeball;
//! these reducers shrink them deterministically (pure functions of the
//! input — no clocks, no randomness).
//!
//! **Eviction caveat:** everything here operates on the samples you hand
//! it — for a ring-buffered channel that is the *kept* window, not the
//! full history. Reductions that must cover the whole run even after the
//! ring evicts (e.g. a peak across an early event) belong in streaming
//! accumulators fed by the probe sink itself, as the scenario trace
//! engine does; use these post-hoc reducers on exported [`ChannelTrace`]
//! samples or on channels whose ring never filled.
//!
//! [`ChannelTrace`]: crate::export::ChannelTrace

use crate::probe::Sample;

/// Decimate to at most `max_rows` samples by stride-picking (always keeps
/// the first sample of each stride window; order preserved).
pub fn decimate(samples: &[Sample], max_rows: usize) -> Vec<Sample> {
    let max_rows = max_rows.max(1);
    if samples.len() <= max_rows {
        return samples.to_vec();
    }
    let stride = samples.len().div_ceil(max_rows);
    samples.iter().step_by(stride).copied().collect()
}

/// Average consecutive windows of `window` samples (partial tail window
/// included): a low-pass alternative to [`decimate`] when spikes should be
/// smeared rather than dropped. The x of each output sample is the window's
/// first x.
pub fn window_mean(samples: &[Sample], window: usize) -> Vec<Sample> {
    let window = window.max(1);
    samples
        .chunks(window)
        .map(|w| Sample {
            x: w[0].x,
            y: w.iter().map(|s| s.y).sum::<f64>() / w.len() as f64,
        })
        .collect()
}

/// Summary statistics of one channel's values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesSummary {
    /// Samples reduced.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Last (newest) value.
    pub last: f64,
}

/// Summarize a value stream; `None` when empty.
pub fn summarize(values: &[f64]) -> Option<SeriesSummary> {
    if values.is_empty() {
        return None;
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
        sum += v;
    }
    Some(SeriesSummary {
        count: values.len(),
        mean: sum / values.len() as f64,
        min,
        max,
        last: *values.last().unwrap(),
    })
}

/// Mean of the kept values with `x >= from` (0 when none) — a post-hoc
/// "post-event tail" reduction (see the module-level eviction caveat).
pub fn mean_after(samples: &[Sample], from: f64) -> f64 {
    let tail: Vec<f64> = samples
        .iter()
        .filter(|s| s.x >= from)
        .map(|s| s.y)
        .collect();
    if tail.is_empty() {
        0.0
    } else {
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

/// Maximum kept value with `x >= from` (0 when none).
pub fn max_after(samples: &[Sample], from: f64) -> f64 {
    samples
        .iter()
        .filter(|s| s.x >= from)
        .map(|s| s.y)
        .fold(0.0, f64::max)
}

/// Minimum kept value within `from <= x < to` (0 when none) — e.g. the
/// post-incast recovery-window throughput dip.
pub fn min_within(samples: &[Sample], from: f64, to: f64) -> f64 {
    let m = samples
        .iter()
        .filter(|s| s.x >= from && s.x < to)
        .map(|s| s.y)
        .fold(f64::INFINITY, f64::min);
    if m.is_finite() {
        m
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| Sample {
                x: i as f64,
                y: i as f64 * 10.0,
            })
            .collect()
    }

    #[test]
    fn decimate_bounds_rows_and_keeps_order() {
        let s = samples(100);
        let d = decimate(&s, 10);
        assert!(d.len() <= 10);
        assert_eq!(d[0].x, 0.0);
        assert!(d.windows(2).all(|w| w[0].x < w[1].x));
        // No-op when already small.
        assert_eq!(decimate(&s[..5], 10).len(), 5);
    }

    #[test]
    fn window_mean_averages_chunks() {
        let s = samples(5);
        let w = window_mean(&s, 2);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], Sample { x: 0.0, y: 5.0 });
        assert_eq!(w[2], Sample { x: 4.0, y: 40.0 }); // partial tail
    }

    #[test]
    fn summaries_and_tail_reductions() {
        let s = samples(10);
        let sum = summarize(&s.iter().map(|p| p.y).collect::<Vec<_>>()).unwrap();
        assert_eq!(sum.count, 10);
        assert_eq!(sum.min, 0.0);
        assert_eq!(sum.max, 90.0);
        assert_eq!(sum.last, 90.0);
        assert_eq!(sum.mean, 45.0);
        assert!(summarize(&[]).is_none());

        assert_eq!(mean_after(&s, 8.0), 85.0);
        assert_eq!(mean_after(&s, 100.0), 0.0);
        assert_eq!(max_after(&s, 5.0), 90.0);
        assert_eq!(min_within(&s, 3.0, 6.0), 30.0);
        assert_eq!(min_within(&s, 50.0, 60.0), 0.0);
    }
}
