//! Downsampling and reduction of sample streams.
//!
//! Traces sampled on a fine tick grid are too dense to export or eyeball;
//! these reducers shrink them deterministically (pure functions of the
//! input — no clocks, no randomness).
//!
//! **Eviction caveat:** everything here operates on the samples you hand
//! it — for a ring-buffered channel that is the *kept* window, not the
//! full history. Reductions that must cover the whole run even after the
//! ring evicts (e.g. a peak across an early event) belong in streaming
//! accumulators fed by the probe sink itself, as the scenario trace
//! engine does; use these post-hoc reducers on exported [`ChannelTrace`]
//! samples or on channels whose ring never filled.
//!
//! [`ChannelTrace`]: crate::export::ChannelTrace

use crate::probe::Sample;

/// Decimate to exactly `min(len, max_rows)` samples by fractional-index
/// picking (order preserved; the first and last samples are always kept,
/// so a trace's endpoint never disappears from a plot).
///
/// Row `i` takes the sample at `⌊i·(len−1)/(max_rows−1)⌋`, which spreads
/// the row budget evenly instead of the integer-stride rule that could
/// return barely half of `max_rows` (e.g. `len=11, max_rows=10` kept only
/// 6 samples and dropped the final one). With `max_rows = 1` the last
/// sample wins (the always-keep-the-last rule takes precedence).
pub fn decimate(samples: &[Sample], max_rows: usize) -> Vec<Sample> {
    let max_rows = max_rows.max(1);
    let len = samples.len();
    if len <= max_rows {
        return samples.to_vec();
    }
    if max_rows == 1 {
        return vec![*samples.last().expect("len > max_rows >= 1")];
    }
    (0..max_rows)
        .map(|i| samples[i * (len - 1) / (max_rows - 1)])
        .collect()
}

/// Average consecutive windows of `window` samples (partial tail window
/// included): a low-pass alternative to [`decimate`] when spikes should be
/// smeared rather than dropped. The x of each output sample is the window's
/// first x.
pub fn window_mean(samples: &[Sample], window: usize) -> Vec<Sample> {
    let window = window.max(1);
    samples
        .chunks(window)
        .map(|w| Sample {
            x: w[0].x,
            y: w.iter().map(|s| s.y).sum::<f64>() / w.len() as f64,
        })
        .collect()
}

/// Summary statistics of one channel's values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesSummary {
    /// Samples reduced.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Last (newest) value.
    pub last: f64,
}

/// Summarize a value stream; `None` when empty.
pub fn summarize(values: &[f64]) -> Option<SeriesSummary> {
    if values.is_empty() {
        return None;
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
        sum += v;
    }
    Some(SeriesSummary {
        count: values.len(),
        mean: sum / values.len() as f64,
        min,
        max,
        last: *values.last().unwrap(),
    })
}

/// Mean of the kept values with `x >= from`, `None` when the window holds
/// no samples — a post-hoc "post-event tail" reduction (see the
/// module-level eviction caveat).
pub fn mean_after(samples: &[Sample], from: f64) -> Option<f64> {
    let (mut sum, mut n) = (0.0, 0u64);
    for s in samples.iter().filter(|s| s.x >= from) {
        sum += s.y;
        n += 1;
    }
    (n > 0).then(|| sum / n as f64)
}

/// Maximum kept value with `x >= from`, `None` when the window holds no
/// samples. (An earlier version folded from a `0.0` seed, which reported
/// 0 for an all-negative series and conflated "no samples" with a genuine
/// zero.)
pub fn max_after(samples: &[Sample], from: f64) -> Option<f64> {
    samples
        .iter()
        .filter(|s| s.x >= from)
        .map(|s| s.y)
        .reduce(f64::max)
}

/// Minimum kept value within `from <= x < to` — e.g. the post-incast
/// recovery-window throughput dip — `None` when the window holds no
/// samples.
pub fn min_within(samples: &[Sample], from: f64, to: f64) -> Option<f64> {
    samples
        .iter()
        .filter(|s| s.x >= from && s.x < to)
        .map(|s| s.y)
        .reduce(f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|i| Sample {
                x: i as f64,
                y: i as f64 * 10.0,
            })
            .collect()
    }

    #[test]
    fn decimate_bounds_rows_and_keeps_order() {
        let s = samples(100);
        let d = decimate(&s, 10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0].x, 0.0);
        assert_eq!(d.last().unwrap().x, 99.0);
        assert!(d.windows(2).all(|w| w[0].x < w[1].x));
        // No-op when already small.
        assert_eq!(decimate(&s[..5], 10).len(), 5);
    }

    #[test]
    fn decimate_fills_the_row_budget_and_keeps_the_last_sample() {
        // Regression: the old integer-stride rule kept only 6 of 10
        // requested rows for len=11 and dropped the final sample.
        let s = samples(11);
        let d = decimate(&s, 10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0].x, 0.0);
        assert_eq!(d.last().unwrap().x, 10.0);
        assert!(d.windows(2).all(|w| w[0].x < w[1].x));
        // Exactly min(len, max_rows) across a spread of shapes.
        for len in [1usize, 2, 7, 11, 12, 99, 100, 101, 1000] {
            for rows in [1usize, 2, 3, 10, 50, 120] {
                let s = samples(len);
                let d = decimate(&s, rows);
                assert_eq!(d.len(), len.min(rows), "len={len} rows={rows}");
                assert_eq!(
                    d.last().unwrap().x,
                    s.last().unwrap().x,
                    "len={len} rows={rows} must keep the last sample"
                );
                assert!(d.windows(2).all(|w| w[0].x < w[1].x));
            }
        }
    }

    #[test]
    fn window_mean_averages_chunks() {
        let s = samples(5);
        let w = window_mean(&s, 2);
        assert_eq!(w.len(), 3);
        assert_eq!(w[0], Sample { x: 0.0, y: 5.0 });
        assert_eq!(w[2], Sample { x: 4.0, y: 40.0 }); // partial tail
    }

    #[test]
    fn summaries_and_tail_reductions() {
        let s = samples(10);
        let sum = summarize(&s.iter().map(|p| p.y).collect::<Vec<_>>()).unwrap();
        assert_eq!(sum.count, 10);
        assert_eq!(sum.min, 0.0);
        assert_eq!(sum.max, 90.0);
        assert_eq!(sum.last, 90.0);
        assert_eq!(sum.mean, 45.0);
        assert!(summarize(&[]).is_none());

        assert_eq!(mean_after(&s, 8.0), Some(85.0));
        assert_eq!(mean_after(&s, 100.0), None);
        assert_eq!(max_after(&s, 5.0), Some(90.0));
        assert_eq!(min_within(&s, 3.0, 6.0), Some(30.0));
        assert_eq!(min_within(&s, 50.0, 60.0), None);
    }

    #[test]
    fn window_reductions_survive_negative_series_and_genuine_zeros() {
        // Regression: folding from a 0.0 seed reported 0 for an
        // all-negative series and made "empty window" look like a real 0.
        let neg: Vec<Sample> = (0..4)
            .map(|i| Sample {
                x: i as f64,
                y: -10.0 * (i + 1) as f64,
            })
            .collect();
        assert_eq!(max_after(&neg, 0.0), Some(-10.0));
        assert_eq!(max_after(&neg, 2.0), Some(-30.0));
        assert_eq!(min_within(&neg, 0.0, 4.0), Some(-40.0));
        assert_eq!(mean_after(&neg, 2.0), Some(-35.0));
        // Empty windows are None, not zero.
        assert_eq!(max_after(&neg, 99.0), None);
        assert_eq!(min_within(&neg, 99.0, 100.0), None);
        assert_eq!(max_after(&[], 0.0), None);
        // A window holding a genuine zero reports it.
        let z = [Sample { x: 1.0, y: 0.0 }];
        assert_eq!(max_after(&z, 0.0), Some(0.0));
        assert_eq!(min_within(&z, 0.0, 2.0), Some(0.0));
    }
}
