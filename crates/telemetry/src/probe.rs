//! The probe recorder: named sample channels on a shared tick grid.
//!
//! A [`Recorder`] is the collection point of one traced run. Experiment
//! harnesses create one per simulation, open channels ("queue",
//! "throughput", "cwnd", "power", …), and register simulator tracers that
//! [`record`](Recorder::record) into them on the recorder's tick grid.
//! Channels are ring-buffered ([`crate::ring::RingBuffer`]) so arbitrarily
//! long runs collect in bounded memory, and everything is ordinary
//! single-threaded data — determinism is inherited from the simulator, and
//! byte-stable export is the job of [`crate::export`].

use crate::ring::RingBuffer;
use powertcp_core::Tick;
use std::cell::RefCell;
use std::rc::Rc;

/// The default x-axis of simulator probes: microseconds of simulated time.
pub const X_TIME_US: &str = "time_us";

/// One sampled point: an x coordinate (usually time in µs) and a value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Sample {
    /// X coordinate (unit named by the channel's `x_unit`).
    pub x: f64,
    /// Sampled value (unit named by the channel's `unit`).
    pub y: f64,
}

/// Handle to a channel of a [`Recorder`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelId(usize);

/// One named sample stream.
#[derive(Clone, Debug)]
pub struct Channel {
    /// Channel name ("queue", "throughput", "cwnd", …).
    pub name: String,
    /// Value unit ("bytes", "Gbps", …).
    pub unit: String,
    /// X-axis unit (default [`X_TIME_US`]).
    pub x_unit: String,
    /// The ring-buffered samples.
    pub ring: RingBuffer<Sample>,
}

/// Collection point for one traced run: a set of channels sharing a
/// sampling tick and a per-channel ring capacity.
#[derive(Clone, Debug)]
pub struct Recorder {
    tick: Tick,
    capacity: usize,
    channels: Vec<Channel>,
}

impl Recorder {
    /// New recorder sampling every `tick` with `capacity` samples of ring
    /// per channel.
    pub fn new(tick: Tick, capacity: usize) -> Self {
        assert!(!tick.is_zero(), "recorder tick must be positive");
        Recorder {
            tick,
            capacity,
            channels: Vec::new(),
        }
    }

    /// New shared (single-threaded `Rc<RefCell<…>>`) recorder — the form
    /// simulator tracer closures capture.
    pub fn new_shared(tick: Tick, capacity: usize) -> SharedRecorder {
        Rc::new(RefCell::new(Recorder::new(tick, capacity)))
    }

    /// The sampling tick grid.
    pub fn tick(&self) -> Tick {
        self.tick
    }

    /// Open a time-indexed channel; returns its handle.
    pub fn channel(&mut self, name: impl Into<String>, unit: impl Into<String>) -> ChannelId {
        self.channel_with_x(name, unit, X_TIME_US)
    }

    /// Open a channel with a custom x-axis (analytic sweeps use e.g.
    /// `qdot_over_bw` instead of time).
    pub fn channel_with_x(
        &mut self,
        name: impl Into<String>,
        unit: impl Into<String>,
        x_unit: impl Into<String>,
    ) -> ChannelId {
        let id = ChannelId(self.channels.len());
        self.channels.push(Channel {
            name: name.into(),
            unit: unit.into(),
            x_unit: x_unit.into(),
            ring: RingBuffer::new(self.capacity),
        });
        id
    }

    /// Record one sample.
    pub fn record(&mut self, ch: ChannelId, x: f64, y: f64) {
        self.channels[ch.0].ring.push(Sample { x, y });
    }

    /// Record one sample at a simulation time (x = µs).
    pub fn record_at(&mut self, ch: ChannelId, t: Tick, y: f64) {
        self.record(ch, t.as_micros_f64(), y);
    }

    /// Read a channel.
    pub fn get(&self, ch: ChannelId) -> &Channel {
        &self.channels[ch.0]
    }

    /// All channels, in creation order.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Consume the recorder, returning its channels in creation order.
    pub fn into_channels(self) -> Vec<Channel> {
        self.channels
    }

    /// Values of a channel (oldest → newest), dropping x coordinates.
    pub fn values(&self, ch: ChannelId) -> Vec<f64> {
        self.get(ch).ring.iter().map(|s| s.y).collect()
    }
}

/// Shared handle for tracer closures (the simulator is single-threaded).
pub type SharedRecorder = Rc<RefCell<Recorder>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_record_independently() {
        let mut r = Recorder::new(Tick::from_micros(10), 100);
        let q = r.channel("queue", "bytes");
        let t = r.channel_with_x("md", "x", "qdot_over_bw");
        r.record_at(q, Tick::from_micros(10), 500.0);
        r.record_at(q, Tick::from_micros(20), 700.0);
        r.record(t, 2.0, 3.0);
        assert_eq!(r.get(q).ring.len(), 2);
        assert_eq!(r.values(q), vec![500.0, 700.0]);
        assert_eq!(r.get(q).ring.to_vec()[0].x, 10.0);
        assert_eq!(r.get(t).x_unit, "qdot_over_bw");
        assert_eq!(r.channels().len(), 2);
    }

    #[test]
    fn ring_capacity_bounds_each_channel() {
        let mut r = Recorder::new(Tick::from_micros(1), 4);
        let c = r.channel("c", "u");
        for i in 0..10 {
            r.record(c, i as f64, i as f64);
        }
        assert_eq!(r.get(c).ring.len(), 4);
        assert_eq!(r.get(c).ring.evicted(), 6);
        assert_eq!(r.values(c), vec![6.0, 7.0, 8.0, 9.0]);
    }
}
