//! HOMA: receiver-driven, message-oriented transport (Montazeri et al.,
//! SIGCOMM 2018) — the paper's representative of receiver-driven designs
//! (§4.1, Figures 4e/5b, and the Appendix-D overcommitment study).
//!
//! Model implemented here:
//!
//! * **Unscheduled data**: a new message blindly transmits its first
//!   `RTTbytes` at a high priority chosen from size cutoffs.
//! * **Grants**: the receiver keeps `incoming = granted − received ≤
//!   RTTbytes` for each granted message, granting to the
//!   **overcommitment-level** (`K`) messages with the fewest remaining
//!   bytes (SRPT). Scheduled packets carry the priority assigned in the
//!   grant (rank within the active set).
//! * **Priorities**: unscheduled traffic uses classes 0–2 (smaller message
//!   → higher class), scheduled traffic classes 3–7 (better SRPT rank →
//!   higher class), mirroring HOMA's priority layout.
//! * **Loss recovery**: the receiver tracks the in-order prefix; if a
//!   message stalls for a resend interval, it re-issues a grant flagged
//!   `resend`, telling the sender to rewind to the prefix (HOMA's RESEND
//!   in go-back-N form — sufficient for a drop-rare fabric).
//!
//! The paper's RTTBytes knob maps to `HostBw × τ`, and the overcommitment
//! level is the `overcommit` config field (1–6 in Appendix D).

use crate::config::TransportConfig;
use crate::flow::FlowSpec;
use crate::metrics::SharedMetrics;
use dcn_sim::{
    Endpoint, EndpointCtx, FlowId, FlowTable, GrantPayload, NodeId, Packet, PacketKind,
    CTRL_PKT_BYTES,
};
use powertcp_core::{Bandwidth, IntHeader, Tick};

const K_MSG_START: u64 = 1;
const K_PACE: u64 = 2;
const K_STALL_SCAN: u64 = 3;

fn key(kind: u64, idx: usize) -> u64 {
    (kind << 56) | idx as u64
}

fn split_key(k: u64) -> (u64, usize) {
    (k >> 56, (k & 0x00FF_FFFF_FFFF_FFFF) as usize)
}

/// HOMA configuration.
#[derive(Clone, Copy, Debug)]
pub struct HomaConfig {
    /// Transport basics (mtu, base RTT).
    pub transport: TransportConfig,
    /// Overcommitment level `K`: how many messages a receiver grants
    /// concurrently (paper Appendix D sweeps 1–6; §4.1 uses 1).
    pub overcommit: usize,
    /// RTTbytes: unscheduled budget and per-message incoming cap. The
    /// paper configures `HostBw × base-RTT`.
    pub rtt_bytes: u64,
    /// Stall scan interval for lost-packet recovery (a few RTTs).
    pub resend_interval: Tick,
}

impl HomaConfig {
    /// Paper-style defaults for a 25G host and the given base RTT.
    pub fn paper_defaults(host_bw: Bandwidth, base_rtt: Tick) -> Self {
        let transport = TransportConfig {
            base_rtt,
            ..TransportConfig::default()
        };
        HomaConfig {
            transport,
            overcommit: 1,
            rtt_bytes: host_bw.bdp_bytes(base_rtt) as u64,
            resend_interval: base_rtt * 20,
        }
    }
}

struct HomaSender {
    spec: FlowSpec,
    /// Bytes sent so far (prefix; rewound on resend).
    sent: u64,
    /// Highest grant received.
    granted: u64,
    /// Priority for scheduled packets (from the latest grant).
    sched_prio: u8,
    next_send: Tick,
    pace_armed_for: Option<Tick>,
    started: bool,
}

struct HomaReceiver {
    src: NodeId,
    msg_len: u64,
    /// In-order prefix received.
    prefix: u64,
    /// Bytes granted (scheduled offset limit).
    granted: u64,
    complete: bool,
    last_progress: Tick,
}

/// HOMA endpoint; one per host (acts as sender and receiver).
pub struct HomaHost {
    cfg: HomaConfig,
    metrics: SharedMetrics,
    senders: Vec<HomaSender>,
    // FlowTable, not BTreeMap: per-packet lookups are slab indexes over
    // the sequential generated ids; `receiver_order` carries the
    // deterministic iteration order, and the table's own ordered
    // iteration matches the old map's (dcn-lint rule R1 guards the same
    // invariant statically).
    sender_index: FlowTable<usize>,
    receivers: FlowTable<HomaReceiver>,
    /// Receive order of message ids (stable iteration for determinism).
    receiver_order: Vec<FlowId>,
    stall_scan_armed: bool,
}

impl HomaHost {
    /// Create a HOMA endpoint.
    pub fn new(cfg: HomaConfig, metrics: SharedMetrics) -> Self {
        assert!(cfg.overcommit >= 1, "overcommit must be >= 1");
        HomaHost {
            cfg,
            metrics,
            senders: Vec::new(),
            sender_index: FlowTable::new(),
            receivers: FlowTable::new(),
            receiver_order: Vec::new(),
            stall_scan_armed: false,
        }
    }

    /// Register an outgoing message.
    pub fn add_flow(&mut self, spec: FlowSpec) {
        assert!(spec.size_bytes > 0);
        self.metrics.borrow_mut().register(spec);
        let idx = self.senders.len();
        self.sender_index.insert(spec.id, idx);
        self.senders.push(HomaSender {
            spec,
            sent: 0,
            granted: 0,
            sched_prio: 5,
            next_send: Tick::ZERO,
            pace_armed_for: None,
            started: false,
        });
    }

    /// Unscheduled priority from message size: small messages go higher
    /// (HOMA derives cutoffs from the workload; fixed cutoffs at one MTU
    /// and RTTbytes preserve the behaviour that matters — short messages
    /// preempt long ones).
    fn unscheduled_prio(&self, len: u64) -> u8 {
        if len <= self.cfg.transport.mtu as u64 {
            0
        } else if len <= self.cfg.rtt_bytes {
            1
        } else {
            2
        }
    }

    fn send_window(&self, s: &HomaSender) -> u64 {
        // Unscheduled budget plus everything granted.
        self.cfg.rtt_bytes.max(s.granted).min(s.spec.size_bytes)
    }

    /// Pump one sender message.
    fn pump(&mut self, idx: usize, ctx: &mut EndpointCtx<'_>) {
        let mtu = self.cfg.transport.mtu as u64;
        let unsched_prio = self.unscheduled_prio(self.senders[idx].spec.size_bytes);
        loop {
            let limit = self.send_window(&self.senders[idx]);
            let s = &mut self.senders[idx];
            if s.sent >= s.spec.size_bytes || s.sent >= limit {
                return;
            }
            if ctx.now < s.next_send {
                if s.pace_armed_for != Some(s.next_send) {
                    s.pace_armed_for = Some(s.next_send);
                    ctx.set_timer(s.next_send, key(K_PACE, idx));
                }
                return;
            }
            let len = mtu.min(s.spec.size_bytes - s.sent).min(limit - s.sent) as u32;
            let offset = s.sent;
            let unscheduled = offset < self.cfg.rtt_bytes;
            let prio = if unscheduled {
                unsched_prio
            } else {
                s.sched_prio
            };
            let pkt = Packet {
                flow: s.spec.id,
                src: s.spec.src,
                dst: s.spec.dst,
                size: len,
                priority: prio,
                ecn_capable: false,
                ecn_ce: false,
                int_enable: false,
                int: IntHeader::new(),
                sent_at: ctx.now,
                kind: PacketKind::HomaData {
                    offset,
                    len,
                    msg_len: s.spec.size_bytes,
                    unscheduled,
                },
            };
            s.sent += len as u64;
            // Pace at line rate; grants control the average rate.
            let gap = ctx.nic_bw.tx_time(len as u64);
            s.next_send = s.next_send.max(ctx.now) + gap;
            ctx.send(pkt);
        }
    }

    /// Receiver-side: (re)issue grants to the top-K incomplete messages by
    /// remaining bytes (SRPT), keeping incoming ≤ RTTbytes each.
    fn regrant(&mut self, ctx: &mut EndpointCtx<'_>) {
        // Rank incomplete messages by remaining bytes.
        let mut active: Vec<(u64, FlowId)> = self
            .receiver_order
            .iter()
            .filter_map(|id| {
                let r = self.receivers.get(*id)?;
                if r.complete {
                    return None;
                }
                Some((r.msg_len - r.prefix, *id))
            })
            .collect();
        active.sort();
        let k = self.cfg.overcommit.min(active.len());
        let mut grants = Vec::new();
        for (rank, &(_, id)) in active.iter().take(k).enumerate() {
            let r = self.receivers.get_mut(id).expect("active message");
            // Scheduled priorities: classes 3..7, better rank = higher.
            let prio = (3 + rank).min(7) as u8;
            let desired = (r.prefix + self.cfg.rtt_bytes).min(r.msg_len);
            if desired > r.granted {
                r.granted = desired;
                grants.push((id, r.src, desired, prio, false));
            }
        }
        for (id, src, offset, prio, resend) in grants {
            self.send_grant(id, src, offset, prio, resend, ctx);
        }
    }

    fn send_grant(
        &self,
        id: FlowId,
        to: NodeId,
        offset: u64,
        prio: u8,
        resend: bool,
        ctx: &mut EndpointCtx<'_>,
    ) {
        let pkt = Packet {
            flow: id,
            src: ctx.node,
            dst: to,
            size: CTRL_PKT_BYTES,
            priority: 0,
            ecn_capable: false,
            ecn_ce: false,
            int_enable: false,
            int: IntHeader::new(),
            sent_at: ctx.now,
            kind: PacketKind::HomaGrant(GrantPayload {
                grant_offset: offset,
                // The resend flag rides in the top bit of priority? No —
                // keep the payload honest: resend grants are encoded by
                // offset <= already-granted, which senders treat as a
                // rewind request. See `on_grant`.
                priority: prio,
            }),
        };
        let _ = resend;
        ctx.send(pkt);
    }

    fn on_data(&mut self, pkt: &Packet, ctx: &mut EndpointCtx<'_>) {
        let PacketKind::HomaData {
            offset,
            len,
            msg_len,
            ..
        } = pkt.kind
        else {
            return;
        };
        if !self.receivers.contains_key(pkt.flow) {
            self.receivers.insert(
                pkt.flow,
                HomaReceiver {
                    src: pkt.src,
                    msg_len,
                    prefix: 0,
                    granted: self.cfg.rtt_bytes.min(msg_len),
                    complete: false,
                    last_progress: ctx.now,
                },
            );
            self.receiver_order.push(pkt.flow);
        }
        let r = self.receivers.get_mut(pkt.flow).expect("just inserted");
        if offset == r.prefix {
            r.prefix += len as u64;
            r.last_progress = ctx.now;
        }
        // (offset > prefix: a gap — ignored, recovered by stall resend;
        //  offset < prefix: duplicate from a rewind — ignored.)
        if !r.complete && r.prefix >= r.msg_len {
            r.complete = true;
            self.metrics.borrow_mut().complete(pkt.flow, ctx.now);
        }
        self.regrant(ctx);
        if !self.stall_scan_armed {
            self.stall_scan_armed = true;
            ctx.set_timer(ctx.now + self.cfg.resend_interval, key(K_STALL_SCAN, 0));
        }
    }

    fn on_grant(&mut self, pkt: &Packet, ctx: &mut EndpointCtx<'_>) {
        let PacketKind::HomaGrant(g) = pkt.kind else {
            return;
        };
        let Some(&idx) = self.sender_index.get(pkt.flow) else {
            return;
        };
        let s = &mut self.senders[idx];
        s.sched_prio = g.priority.clamp(3, 7);
        if g.grant_offset > s.granted {
            s.granted = g.grant_offset;
        } else if g.grant_offset <= s.sent && g.grant_offset < s.spec.size_bytes {
            // Resend request: rewind to the receiver's prefix.
            let rewound = s.sent - g.grant_offset;
            s.sent = g.grant_offset;
            s.granted = s.granted.max(g.grant_offset);
            self.metrics
                .borrow_mut()
                .add_retransmission(pkt.flow, rewound);
        }
        self.pump(idx, ctx);
    }

    /// Periodic scan for stalled messages → resend grants.
    fn stall_scan(&mut self, ctx: &mut EndpointCtx<'_>) {
        self.stall_scan_armed = false;
        let mut resends = Vec::new();
        let mut any_active = false;
        for id in &self.receiver_order {
            let r = self.receivers.get(*id).expect("ordered message");
            if r.complete {
                continue;
            }
            any_active = true;
            // A message is genuinely stalled only if bytes it was granted
            // (or unscheduled bytes) never arrived; ungranted messages are
            // merely waiting their SRPT turn.
            let expected_missing = r.prefix < r.granted;
            if expected_missing
                && ctx.now.saturating_sub(r.last_progress) >= self.cfg.resend_interval
            {
                resends.push((*id, r.src, r.prefix));
            }
        }
        for (id, src, prefix) in resends {
            // Rewind-to-prefix grant (offset <= sent signals resend).
            self.send_grant(id, src, prefix, 5, true, ctx);
        }
        if any_active {
            self.stall_scan_armed = true;
            ctx.set_timer(ctx.now + self.cfg.resend_interval, key(K_STALL_SCAN, 0));
        }
    }
}

impl Endpoint for HomaHost {
    fn on_start(&mut self, ctx: &mut EndpointCtx<'_>) {
        for (idx, s) in self.senders.iter().enumerate() {
            ctx.set_timer(s.spec.start, key(K_MSG_START, idx));
        }
    }

    fn on_packet(&mut self, pkt: Box<Packet>, ctx: &mut EndpointCtx<'_>) {
        match pkt.kind {
            PacketKind::HomaData { .. } => self.on_data(&pkt, ctx),
            PacketKind::HomaGrant(_) => self.on_grant(&pkt, ctx),
            _ => {}
        }
        ctx.recycle(pkt);
    }

    fn on_timer(&mut self, k: u64, ctx: &mut EndpointCtx<'_>) {
        let (kind, idx) = split_key(k);
        match kind {
            K_MSG_START => {
                if let Some(s) = self.senders.get_mut(idx) {
                    if !s.started {
                        s.started = true;
                        s.next_send = ctx.now;
                        self.pump(idx, ctx);
                    }
                }
            }
            K_PACE => {
                if let Some(s) = self.senders.get_mut(idx) {
                    if s.pace_armed_for.is_some_and(|t| t <= ctx.now) {
                        s.pace_armed_for = None;
                    }
                    self.pump(idx, ctx);
                }
            }
            K_STALL_SCAN => self.stall_scan(ctx),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        for kind in [K_MSG_START, K_PACE, K_STALL_SCAN] {
            for idx in [0usize, 3, 500] {
                assert_eq!(split_key(key(kind, idx)), (kind, idx));
            }
        }
    }

    #[test]
    fn unscheduled_priority_cutoffs() {
        let cfg = HomaConfig::paper_defaults(Bandwidth::gbps(25), Tick::from_micros(20));
        let h = HomaHost::new(cfg, crate::metrics::MetricsHub::new_shared());
        assert_eq!(h.unscheduled_prio(500), 0);
        assert_eq!(h.unscheduled_prio(10_000), 1);
        assert_eq!(h.unscheduled_prio(10_000_000), 2);
    }

    #[test]
    #[should_panic]
    fn zero_overcommit_rejected() {
        let mut cfg = HomaConfig::paper_defaults(Bandwidth::gbps(25), Tick::from_micros(20));
        cfg.overcommit = 0;
        HomaHost::new(cfg, crate::metrics::MetricsHub::new_shared());
    }
}
