//! # dcn-transport
//!
//! Transport machinery connecting congestion-control algorithms
//! (`powertcp-core`, `cc-baselines`) to the packet simulator (`dcn-sim`):
//!
//! * [`TransportHost`] — the RDMA-style windowed transport of the paper's
//!   deployment scenario: per-packet ACKs with echoed INT/ECN, sender-side
//!   pacing + window enforcement, go-back-N loss recovery (NACK + RTO),
//!   pluggable CC via a per-flow factory.
//! * [`HomaHost`] — HOMA's receiver-driven transport (unscheduled bursts,
//!   SRPT grants, priority queues, configurable overcommitment), the
//!   paper's receiver-driven baseline.
//! * [`FlowSpec`]/[`MetricsHub`] — experiment plumbing: flow registration
//!   and completion records shared with the harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod flow;
pub mod homa;
pub mod host;
pub mod metrics;

pub use config::TransportConfig;
pub use flow::FlowSpec;
pub use homa::{HomaConfig, HomaHost};
pub use host::{CcFactory, TransportHost};
pub use metrics::{FlowRecord, MetricsHub, SharedMetrics};
