//! Transport configuration.

use powertcp_core::{CcContext, Tick};

/// Parameters of the RDMA-style windowed transport.
#[derive(Clone, Copy, Debug)]
pub struct TransportConfig {
    /// Data payload per packet (on-wire size; header overhead is ignored
    /// uniformly across algorithms).
    pub mtu: u32,
    /// Base RTT `τ` configured into the CC algorithms (the paper uses the
    /// topology's maximum RTT).
    pub base_rtt: Tick,
    /// Retransmission timeout. Go-back-N rewinds to `snd_una` on expiry.
    pub rto: Tick,
    /// Minimum spacing between two NACK-triggered go-back-N rewinds (one
    /// rewind per window, conventionally one base RTT).
    pub nack_guard: Tick,
    /// Expected flows per host NIC (the `N` in the paper's β rule).
    pub expected_flows: u32,
}

impl Default for TransportConfig {
    fn default() -> Self {
        let base_rtt = Tick::from_micros(30);
        TransportConfig {
            mtu: 1000,
            base_rtt,
            rto: Tick::from_micros(300),
            nack_guard: base_rtt,
            expected_flows: 8,
        }
    }
}

impl TransportConfig {
    /// Derive the per-flow congestion-control context for a host with NIC
    /// bandwidth `host_bw`.
    pub fn cc_context(&self, host_bw: powertcp_core::Bandwidth) -> CcContext {
        CcContext {
            base_rtt: self.base_rtt,
            host_bw,
            mtu: self.mtu,
            expected_flows: self.expected_flows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powertcp_core::Bandwidth;

    #[test]
    fn context_derivation() {
        let cfg = TransportConfig::default();
        let ctx = cfg.cc_context(Bandwidth::gbps(25));
        assert_eq!(ctx.base_rtt, cfg.base_rtt);
        assert_eq!(ctx.mtu, 1000);
        assert_eq!(ctx.expected_flows, 8);
    }
}
