//! Shared metrics hub.
//!
//! Endpoints live inside the simulator as boxed trait objects; the hub is
//! the channel through which experiments read results out. It is an
//! `Rc<RefCell<…>>` because the simulator is single-threaded by design.

use crate::flow::FlowSpec;
use dcn_sim::{FlowId, FlowTable};
use powertcp_core::Tick;
use std::cell::RefCell;
use std::rc::Rc;

/// Lifecycle record of one flow.
#[derive(Clone, Copy, Debug)]
pub struct FlowRecord {
    /// The flow.
    pub spec: FlowSpec,
    /// When the receiver got the last byte (None = still running).
    pub completed: Option<Tick>,
    /// Total retransmitted bytes (go-back-N rewind cost).
    pub retransmitted_bytes: u64,
    /// Number of RTO events.
    pub timeouts: u64,
}

impl FlowRecord {
    /// Flow completion time, if finished.
    pub fn fct(&self) -> Option<Tick> {
        self.completed.map(|t| t.saturating_sub(self.spec.start))
    }
}

/// Registry of all flows in an experiment.
///
/// Keyed by a [`FlowTable`] — generated flow ids are sequential, so
/// every `complete`/`add_retransmission` on the data path is a slab
/// index instead of an ordered-tree walk — whose iteration order is
/// ascending flow id, exactly like the `BTreeMap` it replaced:
/// experiment reductions built on [`MetricsHub::records`] (e.g. the
/// `dcn-scenarios` sweep results) stay byte-identical across runs and
/// thread counts.
#[derive(Default, Debug)]
pub struct MetricsHub {
    flows: FlowTable<FlowRecord>,
}

impl MetricsHub {
    /// Create an empty, shareable hub.
    pub fn new_shared() -> SharedMetrics {
        Rc::new(RefCell::new(MetricsHub::default()))
    }

    /// Register a flow at sender setup.
    pub fn register(&mut self, spec: FlowSpec) {
        let prev = self.flows.insert(
            spec.id,
            FlowRecord {
                spec,
                completed: None,
                retransmitted_bytes: 0,
                timeouts: 0,
            },
        );
        assert!(prev.is_none(), "duplicate flow id {:?}", spec.id);
    }

    /// Mark a flow complete (receiver got the last byte).
    pub fn complete(&mut self, id: FlowId, now: Tick) {
        if let Some(r) = self.flows.get_mut(id) {
            if r.completed.is_none() {
                r.completed = Some(now);
            }
        }
    }

    /// Account retransmitted bytes.
    pub fn add_retransmission(&mut self, id: FlowId, bytes: u64) {
        if let Some(r) = self.flows.get_mut(id) {
            r.retransmitted_bytes += bytes;
        }
    }

    /// Account an RTO.
    pub fn add_timeout(&mut self, id: FlowId) {
        if let Some(r) = self.flows.get_mut(id) {
            r.timeouts += 1;
        }
    }

    /// Look up one flow.
    pub fn get(&self, id: FlowId) -> Option<&FlowRecord> {
        self.flows.get(id)
    }

    /// All records, in flow-id order.
    pub fn records(&self) -> impl Iterator<Item = &FlowRecord> {
        self.flows.values()
    }

    /// Completed flow count / total.
    pub fn completion_ratio(&self) -> (usize, usize) {
        let done = self
            .flows
            .values()
            .filter(|r| r.completed.is_some())
            .count();
        (done, self.flows.len())
    }
}

/// Shared handle to the hub.
pub type SharedMetrics = Rc<RefCell<MetricsHub>>;

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::NodeId;

    fn spec(id: u64) -> FlowSpec {
        FlowSpec {
            id: FlowId(id),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: 10_000,
            start: Tick::from_micros(5),
        }
    }

    #[test]
    fn lifecycle() {
        let mut hub = MetricsHub::default();
        hub.register(spec(1));
        assert_eq!(hub.completion_ratio(), (0, 1));
        hub.complete(FlowId(1), Tick::from_micros(105));
        assert_eq!(hub.completion_ratio(), (1, 1));
        let fct = hub.get(FlowId(1)).unwrap().fct().unwrap();
        assert_eq!(fct, Tick::from_micros(100));
    }

    #[test]
    fn double_complete_keeps_first() {
        let mut hub = MetricsHub::default();
        hub.register(spec(1));
        hub.complete(FlowId(1), Tick::from_micros(50));
        hub.complete(FlowId(1), Tick::from_micros(90));
        assert_eq!(
            hub.get(FlowId(1)).unwrap().completed,
            Some(Tick::from_micros(50))
        );
    }

    #[test]
    #[should_panic]
    fn duplicate_registration_panics() {
        let mut hub = MetricsHub::default();
        hub.register(spec(1));
        hub.register(spec(1));
    }

    #[test]
    fn retransmissions_accumulate() {
        let mut hub = MetricsHub::default();
        hub.register(spec(2));
        hub.add_retransmission(FlowId(2), 1000);
        hub.add_retransmission(FlowId(2), 500);
        hub.add_timeout(FlowId(2));
        let r = hub.get(FlowId(2)).unwrap();
        assert_eq!(r.retransmitted_bytes, 1500);
        assert_eq!(r.timeouts, 1);
    }
}
