//! The RDMA-style windowed transport endpoint.
//!
//! Matches the paper's deployment scenario (§1, §4): congestion control
//! runs at the sender (as on an RDMA NIC), every data packet is ACKed, the
//! receiver echoes the INT stack and the ECN mark, and loss recovery is
//! go-back-N (NACK on out-of-order arrival plus an RTO backstop). Window
//! *and* pacing rate are both enforced; which one binds depends on the
//! algorithm (window-based vs rate-based).

use crate::config::TransportConfig;
use crate::flow::FlowSpec;
use crate::metrics::SharedMetrics;
use dcn_sim::{CcFlowSample, Endpoint, EndpointCtx, FlowId, FlowTable, Packet, PacketKind};
use powertcp_core::{AckInfo, Bandwidth, CongestionControl, LossKind, NetSignal, Tick};

/// Timer-key kinds (top byte of the `u64` key).
const K_FLOW_START: u64 = 1;
const K_PACE: u64 = 2;
const K_RTO: u64 = 3;
const K_CC: u64 = 4;

fn key(kind: u64, idx: usize) -> u64 {
    (kind << 56) | idx as u64
}

fn split_key(k: u64) -> (u64, usize) {
    (k >> 56, (k & 0x00FF_FFFF_FFFF_FFFF) as usize)
}

/// Factory producing one congestion-control instance per flow.
pub type CcFactory = Box<dyn FnMut(FlowId, Bandwidth) -> Box<dyn CongestionControl>>;

struct SenderFlow {
    spec: FlowSpec,
    cc: Box<dyn CongestionControl>,
    snd_nxt: u64,
    snd_una: u64,
    next_send: Tick,
    /// Pacing timer armed for this deadline (suppress duplicates).
    pace_armed_for: Option<Tick>,
    /// RTO deadline; a single outstanding timer is kept armed and
    /// re-armed lazily when it fires early (deadline pushed by ACKs).
    rto_deadline: Tick,
    rto_armed: bool,
    last_rewind: Tick,
    cc_timer_armed_for: Option<Tick>,
    done: bool,
}

impl SenderFlow {
    fn inflight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }
    fn remaining(&self) -> u64 {
        self.spec.size_bytes - self.snd_nxt
    }
}

struct ReceiverFlow {
    rcv_nxt: u64,
    /// End sequence learned from the `is_last` packet.
    end_seq: Option<u64>,
    complete: bool,
}

/// Windowed go-back-N transport endpoint; one per host.
pub struct TransportHost {
    cfg: TransportConfig,
    metrics: SharedMetrics,
    make_cc: CcFactory,
    /// Sender flows in start order; timer keys index into this.
    senders: Vec<SenderFlow>,
    // FlowTable, not BTreeMap: generated flow ids are sequential, so the
    // per-ACK and per-data lookups are slab indexes; its ordered
    // iteration (were any added) matches the old map's (dcn-lint R1).
    sender_index: FlowTable<usize>,
    receivers: FlowTable<ReceiverFlow>,
}

impl TransportHost {
    /// Create an endpoint with a CC factory; flows are added with
    /// [`TransportHost::add_flow`] before the simulation starts.
    pub fn new(cfg: TransportConfig, metrics: SharedMetrics, make_cc: CcFactory) -> Self {
        TransportHost {
            cfg,
            metrics,
            make_cc,
            senders: Vec::new(),
            sender_index: FlowTable::new(),
            receivers: FlowTable::new(),
        }
    }

    /// Register a flow this host will send. Must be called before the
    /// simulator is primed.
    pub fn add_flow(&mut self, spec: FlowSpec) {
        assert!(spec.size_bytes > 0, "empty flow {:?}", spec.id);
        self.metrics.borrow_mut().register(spec);
        let idx = self.senders.len();
        self.sender_index.insert(spec.id, idx);
        self.senders.push(SenderFlow {
            spec,
            // The CC is created lazily at flow start so it sees the real
            // NIC bandwidth; placeholder until then.
            cc: Box::new(HoldCc),
            snd_nxt: 0,
            snd_una: 0,
            next_send: Tick::ZERO,
            pace_armed_for: None,
            rto_deadline: Tick::MAX,
            rto_armed: false,
            last_rewind: Tick::ZERO,
            cc_timer_armed_for: None,
            done: false,
        });
    }

    /// Deliver an out-of-band network signal (e.g. circuit up/down) to
    /// every active sender flow's CC. RDCN harnesses call this through a
    /// shared handle.
    pub fn signal_all(&mut self, now: Tick, signal: NetSignal) {
        for f in &mut self.senders {
            if !f.done {
                f.cc.on_signal(now, signal);
            }
        }
    }

    /// Bytes remaining across all sender flows (diagnostics).
    pub fn pending_bytes(&self) -> u64 {
        self.senders
            .iter()
            .map(|f| f.spec.size_bytes - f.snd_una)
            .sum()
    }

    fn start_flow(&mut self, idx: usize, ctx: &mut EndpointCtx<'_>) {
        let nic_bw = ctx.nic_bw;
        let f = &mut self.senders[idx];
        f.cc = (self.make_cc)(f.spec.id, nic_bw);
        f.next_send = ctx.now;
        f.rto_deadline = ctx.now + self.cfg.rto;
        f.rto_armed = true;
        ctx.set_timer(f.rto_deadline, key(K_RTO, idx));
        self.try_send(idx, ctx);
    }

    /// Pump the pacing loop for one flow: emit packets while the window
    /// and pacing allow; otherwise arm the pacing timer (window-limited
    /// flows are re-pumped by the next ACK instead).
    fn try_send(&mut self, idx: usize, ctx: &mut EndpointCtx<'_>) {
        let mtu = self.cfg.mtu as u64;
        loop {
            let f = &mut self.senders[idx];
            if f.done || f.remaining() == 0 {
                return;
            }
            let cwnd = f.cc.cwnd();
            if (f.inflight() as f64) >= cwnd {
                return; // window-limited: ACK clock re-arms.
            }
            if ctx.now < f.next_send {
                // Pacing-limited: arm (deduplicated) timer.
                if f.pace_armed_for != Some(f.next_send) {
                    f.pace_armed_for = Some(f.next_send);
                    ctx.set_timer(f.next_send, key(K_PACE, idx));
                }
                return;
            }
            // Emit one packet.
            let len = mtu.min(f.remaining()) as u32;
            let seq = f.snd_nxt;
            let is_last = seq + len as u64 == f.spec.size_bytes;
            let pkt = Packet::data(
                f.spec.id, f.spec.src, f.spec.dst, seq, len, is_last, ctx.now,
            );
            f.snd_nxt += len as u64;
            let rate = f.cc.pacing_rate();
            // Floor the pacing rate: a zero rate would wedge the flow.
            let rate = if rate.bps() < 1_000_000 {
                Bandwidth::mbps(1)
            } else {
                rate
            };
            let gap = rate.tx_time(len as u64);
            f.next_send = f.next_send.max(ctx.now) + gap;
            ctx.send(pkt);
        }
    }

    fn on_ack(&mut self, pkt: &Packet, ctx: &mut EndpointCtx<'_>) {
        let PacketKind::Ack(ref pl) = pkt.kind else {
            return;
        };
        let Some(&idx) = self.sender_index.get(pkt.flow) else {
            return; // ACK for a flow we do not own (misrouted).
        };
        let f = &mut self.senders[idx];
        if f.done {
            return;
        }
        let newly = pl.cum_ack.saturating_sub(f.snd_una);
        f.snd_una = f.snd_una.max(pl.cum_ack);
        // Feed the control law (an ACK carries the echoed INT stack in
        // its own header field — see `Packet::into_ack`).
        let rtt = ctx.now.saturating_sub(pl.echo_ts);
        let int = (!pkt.int.is_empty()).then_some(&pkt.int);
        f.cc.on_ack(&AckInfo {
            now: ctx.now,
            ack_seq: pl.cum_ack,
            newly_acked: newly,
            snd_nxt: f.snd_nxt,
            rtt,
            int,
            ecn_marked: pl.ecn_echo,
        });
        // Go-back-N on NACK, at most once per guard interval.
        if pl.nack && ctx.now.saturating_sub(f.last_rewind) >= self.cfg.nack_guard {
            f.last_rewind = ctx.now;
            let rewound = f.snd_nxt - f.snd_una;
            f.snd_nxt = f.snd_una;
            f.cc.on_loss(ctx.now, LossKind::Reorder);
            self.metrics
                .borrow_mut()
                .add_retransmission(f.spec.id, rewound);
        }
        // Completion (sender view): all bytes acked.
        if f.snd_una >= f.spec.size_bytes {
            f.done = true;
            return;
        }
        // Refresh the RTO deadline; the armed timer re-arms itself when it
        // fires before the (pushed) deadline.
        f.rto_deadline = ctx.now + self.cfg.rto;
        if !f.rto_armed {
            f.rto_armed = true;
            ctx.set_timer(f.rto_deadline, key(K_RTO, idx));
        }
        // CC-internal timers (DCQCN).
        if let Some(t) = f.cc.poll_timer(ctx.now) {
            if f.cc_timer_armed_for != Some(t) {
                f.cc_timer_armed_for = Some(t);
                ctx.set_timer(t, key(K_CC, idx));
            }
        }
        self.try_send(idx, ctx);
    }

    /// Receive one data packet and send its ACK — in the *same* box: the
    /// delivered packet is transformed in place ([`Packet::into_ack`]),
    /// so the per-ACK cost is a few scalar writes instead of an
    /// `IntHeader` copy plus a pool round-trip.
    fn on_data(&mut self, mut pkt: Box<Packet>, ctx: &mut EndpointCtx<'_>) {
        let PacketKind::Data { seq, len, is_last } = pkt.kind else {
            return;
        };
        let r = self
            .receivers
            .get_or_insert_with(pkt.flow, || ReceiverFlow {
                rcv_nxt: 0,
                end_seq: None,
                complete: false,
            });
        if is_last {
            r.end_seq = Some(seq + len as u64);
        }
        let nack = if seq == r.rcv_nxt {
            r.rcv_nxt += len as u64;
            false
        } else {
            // Out of order (gap) or duplicate: go-back-N receivers keep
            // only the in-order prefix. NACK on a gap.
            seq > r.rcv_nxt
        };
        let cum_ack = r.rcv_nxt;
        if !r.complete {
            if let Some(end) = r.end_seq {
                if r.rcv_nxt >= end {
                    r.complete = true;
                    self.metrics.borrow_mut().complete(pkt.flow, ctx.now);
                }
            }
        }
        pkt.into_ack(cum_ack, nack, ctx.now);
        ctx.send_boxed(pkt);
    }

    fn on_rto(&mut self, idx: usize, ctx: &mut EndpointCtx<'_>) {
        let f = &mut self.senders[idx];
        f.rto_armed = false;
        if f.done {
            return;
        }
        if ctx.now < f.rto_deadline {
            // Deadline was pushed forward by ACK activity: re-arm.
            f.rto_armed = true;
            ctx.set_timer(f.rto_deadline, key(K_RTO, idx));
            return;
        }
        if f.inflight() == 0 && f.remaining() == 0 {
            return;
        }
        // Timeout: rewind and back off via the CC.
        let rewound = f.snd_nxt - f.snd_una;
        f.snd_nxt = f.snd_una;
        f.next_send = ctx.now;
        f.cc.on_loss(ctx.now, LossKind::Timeout);
        {
            let mut m = self.metrics.borrow_mut();
            m.add_timeout(f.spec.id);
            m.add_retransmission(f.spec.id, rewound);
        }
        f.rto_deadline = ctx.now + self.cfg.rto;
        f.rto_armed = true;
        ctx.set_timer(f.rto_deadline, key(K_RTO, idx));
        self.try_send(idx, ctx);
    }
}

/// Placeholder CC used before a flow starts (never consulted for sending
/// because `try_send` is only reachable after `start_flow` replaces it).
struct HoldCc;

impl CongestionControl for HoldCc {
    fn on_ack(&mut self, _ack: &AckInfo<'_>) {}
    fn on_loss(&mut self, _now: Tick, _kind: LossKind) {}
    fn cwnd(&self) -> f64 {
        0.0
    }
    fn pacing_rate(&self) -> Bandwidth {
        Bandwidth::ZERO
    }
    fn name(&self) -> &'static str {
        "hold"
    }
}

impl Endpoint for TransportHost {
    fn on_start(&mut self, ctx: &mut EndpointCtx<'_>) {
        for (idx, f) in self.senders.iter().enumerate() {
            ctx.set_timer(f.spec.start, key(K_FLOW_START, idx));
        }
    }

    fn on_packet(&mut self, pkt: Box<Packet>, ctx: &mut EndpointCtx<'_>) {
        match pkt.kind {
            // Data consumes the box: it goes back out as the ACK.
            PacketKind::Data { .. } => self.on_data(pkt, ctx),
            PacketKind::Ack(_) => {
                self.on_ack(&pkt, ctx);
                ctx.recycle(pkt);
            }
            _ => ctx.recycle(pkt),
        }
    }

    fn cc_samples(&self, out: &mut Vec<CcFlowSample>) {
        for f in &self.senders {
            // Skip flows that have finished or not yet started (the CC is
            // the zero-window `HoldCc` placeholder until flow start).
            if f.done || f.cc.cwnd() <= 0.0 {
                continue;
            }
            out.push(CcFlowSample {
                flow: f.spec.id,
                cwnd_bytes: f.cc.cwnd(),
                pacing: f.cc.pacing_rate(),
                norm_power: f.cc.norm_power(),
            });
        }
    }

    fn on_timer(&mut self, k: u64, ctx: &mut EndpointCtx<'_>) {
        let (kind, idx) = split_key(k);
        if idx >= self.senders.len() {
            return;
        }
        match kind {
            K_FLOW_START => self.start_flow(idx, ctx),
            K_PACE => {
                let f = &mut self.senders[idx];
                if f.pace_armed_for.is_some_and(|t| t <= ctx.now) {
                    f.pace_armed_for = None;
                }
                self.try_send(idx, ctx);
            }
            K_RTO => self.on_rto(idx, ctx),
            K_CC => {
                let f = &mut self.senders[idx];
                f.cc_timer_armed_for = None;
                if let Some(t) = f.cc.poll_timer(ctx.now) {
                    if f.cc_timer_armed_for != Some(t) {
                        f.cc_timer_armed_for = Some(t);
                        ctx.set_timer(t, key(K_CC, idx));
                    }
                }
                if !f.done {
                    self.try_send(idx, ctx);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        for kind in [K_FLOW_START, K_PACE, K_RTO, K_CC] {
            for idx in [0usize, 1, 77, 1 << 20] {
                assert_eq!(split_key(key(kind, idx)), (kind, idx));
            }
        }
    }
}
