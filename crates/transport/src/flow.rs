//! Flow specifications.

use dcn_sim::{FlowId, NodeId};
use powertcp_core::Tick;

/// A flow (message) to transfer: `size_bytes` from `src` to `dst`,
/// starting at `start`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowSpec {
    /// Globally unique flow id.
    pub id: FlowId,
    /// Sending host.
    pub src: NodeId,
    /// Receiving host.
    pub dst: NodeId,
    /// Bytes to transfer.
    pub size_bytes: u64,
    /// Start time.
    pub start: Tick,
}

impl FlowSpec {
    /// Number of MTU-sized packets this flow needs.
    pub fn packet_count(&self, mtu: u32) -> u64 {
        self.size_bytes.div_ceil(mtu as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_count_rounds_up() {
        let f = FlowSpec {
            id: FlowId(1),
            src: NodeId(0),
            dst: NodeId(1),
            size_bytes: 2500,
            start: Tick::ZERO,
        };
        assert_eq!(f.packet_count(1000), 3);
        let g = FlowSpec {
            size_bytes: 3000,
            ..f
        };
        assert_eq!(g.packet_count(1000), 3);
    }
}
