//! Full-stack closed-loop tests: PowerTCP / θ-PowerTCP flows running over
//! the simulated fabric through the windowed transport, plus HOMA message
//! exchange. These are the first end-to-end checks that the control law,
//! INT echo path, pacing, and go-back-N all compose.

use dcn_sim::{
    build_dumbbell, build_star, queue_tracer, series, DumbbellConfig, Endpoint, FlowId, NodeId,
    PortId, Simulator, SwitchConfig,
};
use dcn_transport::{
    FlowSpec, HomaConfig, HomaHost, MetricsHub, SharedMetrics, TransportConfig, TransportHost,
};
use powertcp_core::{
    Bandwidth, CcContext, CongestionControl, PowerTcp, PowerTcpConfig, ThetaPowerTcp, Tick,
};

fn powertcp_factory(
    cfg: TransportConfig,
) -> impl FnMut(FlowId, Bandwidth) -> Box<dyn CongestionControl> {
    move |_id, nic_bw| {
        let ctx: CcContext = cfg.cc_context(nic_bw);
        Box::new(PowerTcp::new(PowerTcpConfig::default(), ctx))
    }
}

fn theta_factory(
    cfg: TransportConfig,
) -> impl FnMut(FlowId, Bandwidth) -> Box<dyn CongestionControl> {
    move |_id, nic_bw| {
        let ctx: CcContext = cfg.cc_context(nic_bw);
        Box::new(ThetaPowerTcp::new(PowerTcpConfig::default(), ctx))
    }
}

/// Two-sender dumbbell with one long flow each; returns (sim, metrics,
/// queue series, bottleneck switch).
fn dumbbell_long_flows(
    make_cc: impl Fn(TransportConfig) -> Box<dyn FnMut(FlowId, Bandwidth) -> Box<dyn CongestionControl>>,
    flow_bytes: u64,
) -> (Simulator, SharedMetrics, dcn_sim::Series) {
    let metrics = MetricsHub::new_shared();
    let dcfg = DumbbellConfig {
        pairs: 2,
        ..DumbbellConfig::default()
    };
    let tcfg = TransportConfig {
        base_rtt: Tick::from_micros(12),
        expected_flows: 2,
        ..TransportConfig::default()
    };
    let m2 = metrics.clone();
    let mut mk = move |_id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        let mut host = TransportHost::new(tcfg, m2.clone(), make_cc(tcfg));
        if idx < 2 {
            // Senders 0,1 are hosts node ids 2,3; receivers 4,5.
            host.add_flow(FlowSpec {
                id: FlowId(idx as u64 + 1),
                src: NodeId(2 + idx as u32),
                dst: NodeId(4 + idx as u32),
                size_bytes: flow_bytes,
                start: Tick::from_micros(idx as u64 * 5),
            });
        }
        Box::new(host)
    };
    let d = build_dumbbell(dcfg, &mut mk);
    let sw = d.left;
    let bport = d.bottleneck_port;
    let mut sim = Simulator::new(d.net);
    let qs = series();
    sim.add_tracer(Tick::from_micros(5), queue_tracer(sw, bport, qs.clone()));
    (sim, metrics, qs)
}

#[test]
fn powertcp_two_flows_complete_and_share() {
    let (mut sim, metrics, qs) = dumbbell_long_flows(
        |cfg| Box::new(powertcp_factory(cfg)),
        2_000_000, // 2 MB each over a 25G bottleneck ≈ 1.28 ms total
    );
    sim.run_until(Tick::from_millis(10));
    let m = metrics.borrow();
    assert_eq!(m.completion_ratio(), (2, 2), "both flows must finish");
    // Aggregate goodput must be near the bottleneck line rate: 4 MB at
    // 25 Gbps is ~1.28 ms; allow 2x for startup/sharing losses.
    let last_done = m.records().map(|r| r.completed.unwrap()).max().unwrap();
    assert!(
        last_done < Tick::from_micros(2600),
        "finished too slowly: {last_done}"
    );
    // PowerTCP's equilibrium queue is tiny (≈ β̂); the time-average queue
    // must stay far below one BDP (37.5 KB at 25G × 12µs).
    let qv = qs.borrow();
    let avg = qv.iter().map(|&(_, v)| v).sum::<f64>() / qv.len().max(1) as f64;
    assert!(avg < 40_000.0, "avg bottleneck queue {avg:.0}B too high");
}

#[test]
fn theta_powertcp_two_flows_complete() {
    let (mut sim, metrics, _qs) =
        dumbbell_long_flows(|cfg| Box::new(theta_factory(cfg)), 1_000_000);
    sim.run_until(Tick::from_millis(10));
    let m = metrics.borrow();
    assert_eq!(m.completion_ratio(), (2, 2));
}

#[test]
fn powertcp_controls_incast_queue() {
    // 8:1 incast of long flows on a star; PowerTCP must keep the receiver
    // downlink queue bounded well below the no-CC case.
    let metrics = MetricsHub::new_shared();
    let tcfg = TransportConfig {
        base_rtt: Tick::from_micros(10),
        expected_flows: 1,
        ..TransportConfig::default()
    };
    let m2 = metrics.clone();
    let mut mk = move |_id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        let mut host = TransportHost::new(tcfg, m2.clone(), Box::new(powertcp_factory(tcfg)));
        if idx >= 1 {
            // Hosts 1..9 send to host 0 (node ids: switch=0, hosts=1..).
            host.add_flow(FlowSpec {
                id: FlowId(idx as u64),
                src: NodeId(1 + idx as u32),
                dst: NodeId(1),
                size_bytes: 500_000,
                start: Tick::ZERO,
            });
        }
        Box::new(host)
    };
    let star = build_star(
        9,
        Bandwidth::gbps(25),
        Tick::from_micros(1),
        SwitchConfig::default(),
        &mut mk,
    );
    let sw = star.switch;
    let mut sim = Simulator::new(star.net);
    let qs = series();
    sim.add_tracer(
        Tick::from_micros(5),
        queue_tracer(sw, PortId(0), qs.clone()),
    );
    sim.run_until(Tick::from_millis(5));
    let m = metrics.borrow();
    assert_eq!(m.completion_ratio(), (8, 8), "all incast flows finish");
    // After the first-RTT line-rate burst (8 × BDP ≈ 250 KB), the
    // steady-state queue must collapse to near zero.
    let qv = qs.borrow();
    let tail_avg: f64 = {
        let n = qv.len();
        let tail = &qv[n / 2..];
        tail.iter().map(|&(_, v)| v).sum::<f64>() / tail.len() as f64
    };
    assert!(
        tail_avg < 30_000.0,
        "steady-state incast queue {tail_avg:.0}B too high"
    );
    // No drops: the 7MB default buffer absorbs the initial burst.
    assert_eq!(sim.net.switch(sw).total_drops(), 0);
}

#[test]
fn short_flow_completes_in_couple_rtts() {
    // A 10 KB flow at line rate should finish in ~1 RTT + serialization.
    let metrics = MetricsHub::new_shared();
    let tcfg = TransportConfig {
        base_rtt: Tick::from_micros(12),
        ..TransportConfig::default()
    };
    let m2 = metrics.clone();
    let mut mk = move |_id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        let mut host = TransportHost::new(tcfg, m2.clone(), Box::new(powertcp_factory(tcfg)));
        if idx == 0 {
            host.add_flow(FlowSpec {
                id: FlowId(1),
                src: NodeId(2),
                dst: NodeId(4),
                size_bytes: 10_000,
                start: Tick::ZERO,
            });
        }
        Box::new(host)
    };
    let d = build_dumbbell(DumbbellConfig::default(), &mut mk);
    let mut sim = Simulator::new(d.net);
    sim.run_until(Tick::from_millis(1));
    let m = metrics.borrow();
    let fct = m.get(FlowId(1)).unwrap().fct().expect("finished");
    // one-way prop 4us + 10 packets ser (3.2us at 25G) + slack.
    assert!(fct < Tick::from_micros(20), "FCT {fct} too slow");
}

#[test]
fn lossy_path_recovers_via_gbn() {
    // Tiny switch buffer forces drops during the first-RTT burst; the
    // flow must still complete through NACK/RTO recovery.
    let metrics = MetricsHub::new_shared();
    let tcfg = TransportConfig {
        base_rtt: Tick::from_micros(10),
        ..TransportConfig::default()
    };
    let m2 = metrics.clone();
    let mut mk = move |_id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        let mut host = TransportHost::new(tcfg, m2.clone(), Box::new(powertcp_factory(tcfg)));
        if idx >= 1 {
            host.add_flow(FlowSpec {
                id: FlowId(idx as u64),
                src: NodeId(1 + idx as u32),
                dst: NodeId(1),
                size_bytes: 200_000,
                start: Tick::ZERO,
            });
        }
        Box::new(host)
    };
    let star = build_star(
        9,
        Bandwidth::gbps(25),
        Tick::from_micros(1),
        SwitchConfig {
            buffer_bytes: 60_000, // tiny: the 8×BDP burst must overflow
            ..SwitchConfig::default()
        },
        &mut mk,
    );
    let sw = star.switch;
    let mut sim = Simulator::new(star.net);
    sim.run_until(Tick::from_millis(20));
    assert!(
        sim.net.switch(sw).total_drops() > 0,
        "test needs drops to exercise recovery"
    );
    let m = metrics.borrow();
    assert_eq!(m.completion_ratio(), (8, 8), "GBN must recover all flows");
    let retx: u64 = m.records().map(|r| r.retransmitted_bytes).sum();
    assert!(retx > 0, "recovery implies retransmissions");
}

#[test]
fn homa_messages_complete() {
    // 4 hosts; host 1,2,3 each send one message to host 0.
    let metrics = MetricsHub::new_shared();
    let base_rtt = Tick::from_micros(10);
    let m2 = metrics.clone();
    let mut mk = move |_id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        let cfg = HomaConfig::paper_defaults(Bandwidth::gbps(25), base_rtt);
        let mut host = HomaHost::new(cfg, m2.clone());
        if idx >= 1 {
            host.add_flow(FlowSpec {
                id: FlowId(idx as u64),
                src: NodeId(1 + idx as u32),
                dst: NodeId(1),
                size_bytes: 300_000,
                start: Tick::ZERO,
            });
        }
        Box::new(host)
    };
    let star = build_star(
        4,
        Bandwidth::gbps(25),
        Tick::from_micros(1),
        SwitchConfig::default(),
        &mut mk,
    );
    let mut sim = Simulator::new(star.net);
    sim.run_until(Tick::from_millis(5));
    let m = metrics.borrow();
    assert_eq!(m.completion_ratio(), (3, 3), "all HOMA messages complete");
    // 3×300KB over 25G ≈ 288µs minimum; allow generous slack for grant
    // serialization (overcommit 1 serializes messages).
    let last = m.records().map(|r| r.completed.unwrap()).max().unwrap();
    assert!(last < Tick::from_millis(2), "HOMA too slow: {last}");
}

#[test]
fn homa_short_message_single_rtt() {
    // A single-MTU message needs no grants: unscheduled delivery ~ 0.5 RTT.
    let metrics = MetricsHub::new_shared();
    let base_rtt = Tick::from_micros(10);
    let m2 = metrics.clone();
    let mut mk = move |_id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        let cfg = HomaConfig::paper_defaults(Bandwidth::gbps(25), base_rtt);
        let mut host = HomaHost::new(cfg, m2.clone());
        if idx == 1 {
            host.add_flow(FlowSpec {
                id: FlowId(1),
                src: NodeId(2),
                dst: NodeId(1),
                size_bytes: 900,
                start: Tick::ZERO,
            });
        }
        Box::new(host)
    };
    let star = build_star(
        2,
        Bandwidth::gbps(25),
        Tick::from_micros(1),
        SwitchConfig::default(),
        &mut mk,
    );
    let mut sim = Simulator::new(star.net);
    sim.run_until(Tick::from_millis(1));
    let fct = metrics.borrow().get(FlowId(1)).unwrap().fct().unwrap();
    assert!(fct < Tick::from_micros(5), "unscheduled FCT {fct}");
}

#[test]
fn deterministic_replay_full_stack() {
    let run = || {
        let (mut sim, metrics, qs) =
            dumbbell_long_flows(|cfg| Box::new(powertcp_factory(cfg)), 500_000);
        sim.run_until(Tick::from_millis(5));
        let m = metrics.borrow();
        let fcts: Vec<_> = {
            let mut v: Vec<_> = m.records().map(|r| (r.spec.id, r.completed)).collect();
            v.sort_by_key(|(id, _)| *id);
            v
        };
        let qv = qs.borrow().clone();
        (fcts, qv)
    };
    assert_eq!(run(), run());
}
