//! Failure-injection tests: the transport must degrade gracefully, not
//! wedge, under hostile conditions — unresponsive receivers, severe
//! buffer starvation, and asymmetric (ACK-path) congestion.

use dcn_sim::{
    build_star, Endpoint, EndpointCtx, FlowId, NodeId, Packet, PacketKind, Simulator, SwitchConfig,
};
use dcn_transport::{FlowSpec, MetricsHub, TransportConfig, TransportHost};
use powertcp_core::{Bandwidth, CongestionControl, PowerTcp, PowerTcpConfig, Tick};
use std::cell::RefCell;
use std::rc::Rc;

fn powertcp_host(tcfg: TransportConfig, metrics: dcn_transport::SharedMetrics) -> TransportHost {
    TransportHost::new(
        tcfg,
        metrics,
        Box::new(move |_f, nic| -> Box<dyn CongestionControl> {
            Box::new(PowerTcp::new(
                PowerTcpConfig::default(),
                tcfg.cc_context(nic),
            ))
        }),
    )
}

/// A receiver that silently discards everything (black hole).
struct BlackHole;
impl Endpoint for BlackHole {
    fn on_packet(&mut self, _pkt: Box<Packet>, _ctx: &mut EndpointCtx<'_>) {}
    fn on_timer(&mut self, _key: u64, _ctx: &mut EndpointCtx<'_>) {}
}

#[test]
fn black_hole_receiver_triggers_rtos_not_hangs() {
    let metrics = MetricsHub::new_shared();
    let tcfg = TransportConfig {
        base_rtt: Tick::from_micros(8),
        rto: Tick::from_micros(100),
        ..TransportConfig::default()
    };
    let m2 = metrics.clone();
    let mut mk = move |id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        if idx == 0 {
            Box::new(BlackHole)
        } else {
            let mut h = powertcp_host(tcfg, m2.clone());
            h.add_flow(FlowSpec {
                id: FlowId(1),
                src: id,
                dst: NodeId(1),
                size_bytes: 100_000,
                start: Tick::ZERO,
            });
            Box::new(h)
        }
    };
    let star = build_star(
        2,
        Bandwidth::gbps(25),
        Tick::from_micros(1),
        SwitchConfig::default(),
        &mut mk,
    );
    let mut sim = Simulator::new(star.net);
    // Must terminate (no infinite event storm) within the horizon.
    sim.run_until(Tick::from_millis(5));
    let m = metrics.borrow();
    let rec = m.get(FlowId(1)).unwrap();
    assert!(rec.completed.is_none(), "black hole: flow cannot finish");
    assert!(
        rec.timeouts >= 3,
        "RTO clock must keep firing: {}",
        rec.timeouts
    );
    // The sender keeps retrying at a bounded rate (window collapsed), not
    // blasting: retransmitted bytes stay well under line-rate × horizon.
    assert!(rec.retransmitted_bytes < 10_000_000);
}

/// A receiver that ACKs normally but *drops every third data packet*
/// before processing (models a corrupting last hop).
struct LossyReceiver {
    inner: TransportHost,
    count: Rc<RefCell<u64>>,
}
impl Endpoint for LossyReceiver {
    fn on_start(&mut self, ctx: &mut EndpointCtx<'_>) {
        self.inner.on_start(ctx);
    }
    fn on_packet(&mut self, pkt: Box<Packet>, ctx: &mut EndpointCtx<'_>) {
        if matches!(pkt.kind, PacketKind::Data { .. }) {
            let mut c = self.count.borrow_mut();
            *c += 1;
            if (*c).is_multiple_of(3) {
                return; // dropped on the floor
            }
        }
        self.inner.on_packet(pkt, ctx);
    }
    fn on_timer(&mut self, key: u64, ctx: &mut EndpointCtx<'_>) {
        self.inner.on_timer(key, ctx);
    }
}

#[test]
fn one_third_receiver_loss_still_completes() {
    let metrics = MetricsHub::new_shared();
    let tcfg = TransportConfig {
        base_rtt: Tick::from_micros(8),
        rto: Tick::from_micros(150),
        ..TransportConfig::default()
    };
    let m2 = metrics.clone();
    let mut mk = move |id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        if idx == 0 {
            Box::new(LossyReceiver {
                inner: powertcp_host(tcfg, m2.clone()),
                count: Rc::new(RefCell::new(0)),
            })
        } else {
            let mut h = powertcp_host(tcfg, m2.clone());
            h.add_flow(FlowSpec {
                id: FlowId(1),
                src: id,
                dst: NodeId(1),
                size_bytes: 60_000,
                start: Tick::ZERO,
            });
            Box::new(h)
        }
    };
    let star = build_star(
        2,
        Bandwidth::gbps(25),
        Tick::from_micros(1),
        SwitchConfig::default(),
        &mut mk,
    );
    let mut sim = Simulator::new(star.net);
    sim.run_until(Tick::from_millis(50));
    let m = metrics.borrow();
    let rec = m.get(FlowId(1)).unwrap();
    assert!(
        rec.completed.is_some(),
        "go-back-N must grind through 33% loss (timeouts={} retx={})",
        rec.timeouts,
        rec.retransmitted_bytes
    );
    assert!(rec.retransmitted_bytes > 0);
}

#[test]
fn starved_buffer_quarter_bdp_still_completes() {
    // Buffer smaller than one window: heavy drops from the first RTT.
    let metrics = MetricsHub::new_shared();
    let tcfg = TransportConfig {
        base_rtt: Tick::from_micros(8),
        rto: Tick::from_micros(200),
        ..TransportConfig::default()
    };
    let m2 = metrics.clone();
    let mut mk = move |id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        let mut h = powertcp_host(tcfg, m2.clone());
        if idx >= 1 {
            h.add_flow(FlowSpec {
                id: FlowId(idx as u64),
                src: id,
                dst: NodeId(1),
                size_bytes: 150_000,
                start: Tick::ZERO,
            });
        }
        Box::new(h)
    };
    let star = build_star(
        5,
        Bandwidth::gbps(25),
        Tick::from_micros(1),
        SwitchConfig {
            buffer_bytes: 6_000, // ~quarter of one 25KB window
            ..SwitchConfig::default()
        },
        &mut mk,
    );
    let sw = star.switch;
    let mut sim = Simulator::new(star.net);
    sim.run_until(Tick::from_millis(60));
    assert!(
        sim.net.switch(sw).total_drops() > 50,
        "starvation must drop"
    );
    let m = metrics.borrow();
    assert_eq!(m.completion_ratio(), (4, 4), "all flows must still finish");
}

#[test]
fn ack_path_congestion_does_not_deadlock() {
    // Bidirectional traffic: A→B data competes with B→A data whose ACKs
    // share the reverse path. Both directions must complete.
    let metrics = MetricsHub::new_shared();
    let tcfg = TransportConfig {
        base_rtt: Tick::from_micros(8),
        rto: Tick::from_micros(200),
        ..TransportConfig::default()
    };
    let m2 = metrics.clone();
    let mut mk = move |id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        let mut h = powertcp_host(tcfg, m2.clone());
        // Hosts 0 and 1 (node ids 1 and 2) flood each other.
        if idx == 0 {
            h.add_flow(FlowSpec {
                id: FlowId(1),
                src: id,
                dst: NodeId(2),
                size_bytes: 2_000_000,
                start: Tick::ZERO,
            });
        } else if idx == 1 {
            h.add_flow(FlowSpec {
                id: FlowId(2),
                src: id,
                dst: NodeId(1),
                size_bytes: 2_000_000,
                start: Tick::ZERO,
            });
        }
        Box::new(h)
    };
    let star = build_star(
        2,
        Bandwidth::gbps(25),
        Tick::from_micros(1),
        SwitchConfig::default(),
        &mut mk,
    );
    let mut sim = Simulator::new(star.net);
    sim.run_until(Tick::from_millis(10));
    assert_eq!(metrics.borrow().completion_ratio(), (2, 2));
}
