//! The job subsystem: per-submission lifecycle, progress accounting,
//! and the bounded FIFO queue feeding the worker pool.
//!
//! A [`Job`] is born `queued` when `POST /jobs` accepts a spec, turns
//! `running` when a worker picks it up, and ends `done` (reports
//! rendered) or `failed` (error captured). The job itself implements
//! [`Observer`]: the executor reports each completed point straight into
//! the job, which appends the span's NDJSON line to the event log and
//! updates the hit/miss/done counters that drive status ETAs and the
//! dashboard. The event log finishes with the same summary record `xp
//! run --log-json` emits, so a job's event stream and a batch run's
//! stream share one grammar.
//!
//! Wall-clock time lives here and only here in this crate (span
//! timestamps come from the executor; this module only times the job
//! itself for ETA math). Reports never see any of it: the report bytes
//! are rendered from the returned [`ScenarioOutput`] alone.

// Wall-clock reads are confined to this module (see module docs); the
// workspace-wide clippy mirror of lint rule R2 is lifted for the file.
#![allow(clippy::disallowed_methods)]

use crate::RunFn;
use dcn_scenarios::{
    analytic_entries, spec_kind, sweep_points, trace_entries, Observer, ScenarioSpec, SpanRecord,
    SummaryRecord,
};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Lifecycle state of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting in the FIFO queue.
    Queued,
    /// Claimed by a worker; points are completing.
    Running,
    /// Finished; reports are available.
    Done,
    /// Execution failed; the error is captured on the job.
    Failed,
}

impl JobState {
    /// Wire label (`queued` / `running` / `done` / `failed`).
    pub fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// Whether the job will make no further progress.
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }
}

/// Mutable half of a job, guarded by one mutex so every observer update
/// and state transition is atomic with respect to status reads.
struct Progress {
    state: JobState,
    /// NDJSON event log: one span line per completed point, then one
    /// summary line. Streamed by `GET /jobs/<id>/events`.
    events: Vec<String>,
    /// Points completed so far, by cache disposition.
    done: usize,
    hits: usize,
    misses: usize,
    /// Wall-clock milliseconds summed over completed spans (ETA basis).
    span_wall_ms: f64,
    /// Simulation events summed over completed spans (summary record).
    sim_events: u64,
    /// When the worker claimed the job (ETA + wall_ms basis).
    started: Option<Instant>,
    /// Total wall milliseconds, frozen at completion.
    wall_ms: f64,
    /// Rendered reports, present once `Done`.
    report_json: Option<String>,
    report_csv: Option<String>,
    /// Failure message, present once `Failed`.
    error: Option<String>,
}

/// One submitted scenario and its full lifecycle. Shared between the
/// accept loop (submission + status reads), one worker (execution), and
/// any number of event-stream readers.
pub struct Job {
    /// Dense id, assigned in submission order.
    pub id: u64,
    /// Scenario name from the spec.
    pub name: String,
    /// `sweep` / `timeseries` / `analytic`.
    pub kind: &'static str,
    /// Total points the spec expands to (denominator for progress).
    pub points: usize,
    /// The parsed submission.
    pub spec: ScenarioSpec,
    progress: Mutex<Progress>,
    /// Notified on every event append and state change.
    changed: Condvar,
}

/// Immutable status snapshot, taken under the lock, for rendering.
#[derive(Clone, Debug)]
pub struct JobSnapshot {
    /// Job id.
    pub id: u64,
    /// Scenario name.
    pub name: String,
    /// Spec kind label.
    pub kind: &'static str,
    /// Lifecycle state at snapshot time.
    pub state: JobState,
    /// Total points.
    pub points: usize,
    /// Completed points.
    pub done: usize,
    /// Cache hits among completed points.
    pub hits: usize,
    /// Cache misses among completed points.
    pub misses: usize,
    /// Wall milliseconds: running total while live, frozen at the end.
    pub wall_ms: f64,
    /// Estimated milliseconds to completion (running jobs with at least
    /// one completed point only).
    pub eta_ms: Option<f64>,
    /// Failure message, if failed.
    pub error: Option<String>,
}

impl JobSnapshot {
    /// Status as one NDJSON line: `{"record":"job",...}` — the job-level
    /// companion to the span/summary grammar.
    pub fn to_json(&self) -> String {
        let eta = match self.eta_ms {
            Some(ms) => format!("{ms:.0}"),
            None => "null".into(),
        };
        let error = match &self.error {
            Some(e) => json_str(e),
            None => "null".into(),
        };
        format!(
            "{{\"record\":\"job\",\"id\":{},\"name\":{},\"kind\":\"{}\",\"state\":\"{}\",\
             \"points\":{},\"done\":{},\"hits\":{},\"misses\":{},\"wall_ms\":{:.3},\
             \"eta_ms\":{},\"error\":{}}}",
            self.id,
            json_str(&self.name),
            self.kind,
            self.state.as_str(),
            self.points,
            self.done,
            self.hits,
            self.misses,
            self.wall_ms,
            eta,
            error
        )
    }
}

impl Job {
    /// Wrap a parsed spec as a queued job.
    pub fn new(id: u64, spec: ScenarioSpec) -> Arc<Job> {
        let kind = spec_kind(&spec);
        let points = match kind {
            "analytic" => analytic_entries(&spec).len(),
            "timeseries" => trace_entries(&spec).len(),
            _ => sweep_points(&spec).len(),
        };
        Arc::new(Job {
            id,
            name: spec.name.clone(),
            kind,
            points,
            spec,
            progress: Mutex::new(Progress {
                state: JobState::Queued,
                events: Vec::new(),
                done: 0,
                hits: 0,
                misses: 0,
                span_wall_ms: 0.0,
                sim_events: 0,
                started: None,
                wall_ms: 0.0,
                report_json: None,
                report_csv: None,
                error: None,
            }),
            changed: Condvar::new(),
        })
    }

    /// Run the job to completion through the injected run function.
    /// Called by exactly one worker; every transition notifies waiters.
    pub fn execute(self: &Arc<Job>, run: &RunFn) {
        {
            let mut p = self.progress.lock().unwrap();
            p.state = JobState::Running;
            p.started = Some(Instant::now());
            self.changed.notify_all();
        }
        let result = run(&self.spec, self.as_ref());
        let mut p = self.progress.lock().unwrap();
        p.wall_ms = match p.started {
            Some(t0) => t0.elapsed().as_secs_f64() * 1e3,
            None => 0.0,
        };
        match result {
            Ok(output) => {
                // Reports are rendered from the output alone — the bytes
                // are exactly `xp run`'s, regardless of scheduling.
                p.report_json = Some(output.to_json());
                p.report_csv = Some(output.to_csv());
                let summary = SummaryRecord {
                    name: self.name.clone(),
                    kind: self.kind.to_string(),
                    points: p.done,
                    cached: p.hits,
                    wall_ms: p.span_wall_ms,
                    events: p.sim_events,
                };
                // Summary before the terminal state, under one lock:
                // event streams observe a complete log the moment they
                // see a terminal state.
                p.events.push(summary.to_json());
                p.state = JobState::Done;
            }
            Err(e) => {
                p.error = Some(e);
                p.state = JobState::Failed;
            }
        }
        self.changed.notify_all();
    }

    /// Status snapshot for `GET /jobs` and `GET /jobs/<id>`.
    pub fn snapshot(&self) -> JobSnapshot {
        let p = self.progress.lock().unwrap();
        let wall_ms = match (p.state, p.started) {
            (JobState::Running, Some(t0)) => t0.elapsed().as_secs_f64() * 1e3,
            _ => p.wall_ms,
        };
        let eta_ms = if p.state == JobState::Running && p.done > 0 && self.points > p.done {
            Some(p.span_wall_ms / p.done as f64 * (self.points - p.done) as f64)
        } else {
            None
        };
        JobSnapshot {
            id: self.id,
            name: self.name.clone(),
            kind: self.kind,
            state: p.state,
            points: self.points,
            done: p.done,
            hits: p.hits,
            misses: p.misses,
            wall_ms,
            eta_ms,
            error: p.error.clone(),
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        self.progress.lock().unwrap().state
    }

    /// The JSON report, once done.
    pub fn report_json(&self) -> Option<String> {
        self.progress.lock().unwrap().report_json.clone()
    }

    /// The CSV report, once done.
    pub fn report_csv(&self) -> Option<String> {
        self.progress.lock().unwrap().report_csv.clone()
    }

    /// Event lines from `from` onward, blocking until at least one new
    /// line is available or the job is terminal. Returns the new lines
    /// and whether the job is terminal (stream may end). Waits time out
    /// periodically so a shutting-down server can drop readers.
    pub fn wait_events(&self, from: usize, max_wait: Duration) -> (Vec<String>, bool) {
        let mut p = self.progress.lock().unwrap();
        let deadline = Instant::now() + max_wait;
        while p.events.len() <= from && !p.state.is_terminal() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next, timeout) = self.changed.wait_timeout(p, deadline - now).unwrap();
            p = next;
            if timeout.timed_out() {
                break;
            }
        }
        let lines = p.events.get(from..).unwrap_or(&[]).to_vec();
        (lines, p.state.is_terminal())
    }

    /// Block until the job reaches a terminal state.
    pub fn wait_terminal(&self) -> JobState {
        let mut p = self.progress.lock().unwrap();
        while !p.state.is_terminal() {
            p = self.changed.wait(p).unwrap();
        }
        p.state
    }
}

impl Observer for Job {
    fn span(&self, span: &SpanRecord) {
        let mut p = self.progress.lock().unwrap();
        p.done += 1;
        match span.cache {
            dcn_scenarios::CacheStatus::Hit => p.hits += 1,
            dcn_scenarios::CacheStatus::Miss => p.misses += 1,
            dcn_scenarios::CacheStatus::Computed => {}
        }
        p.span_wall_ms += span.wall_ms;
        if let Some(stats) = &span.stats {
            p.sim_events += stats.events_processed;
        }
        p.events.push(span.to_json());
        self.changed.notify_all();
    }
}

/// Bounded FIFO job queue between the accept loop and the worker pool.
/// `push` fails fast when full (the server answers 503 — backpressure,
/// not buffering); `pop` blocks until a job arrives or the queue is
/// closed and drained, which is how graceful shutdown ends the workers.
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    nonempty: Condvar,
    cap: usize,
}

struct QueueInner {
    queue: VecDeque<Arc<Job>>,
    closed: bool,
}

impl JobQueue {
    /// An open queue holding at most `cap` undispatched jobs.
    pub fn new(cap: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(QueueInner {
                queue: VecDeque::new(),
                closed: false,
            }),
            nonempty: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueue a job. `Err` when the queue is full or closed; the
    /// message is the client-facing explanation.
    pub fn push(&self, job: Arc<Job>) -> Result<(), String> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err("server is shutting down".into());
        }
        if inner.queue.len() >= self.cap {
            return Err(format!("job queue is full ({} queued)", self.cap));
        }
        inner.queue.push_back(job);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Dequeue the oldest job, blocking while the queue is open and
    /// empty. `None` once the queue is closed **and** drained — the
    /// worker's signal to exit after finishing queued work.
    pub fn pop(&self) -> Option<Arc<Job>> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(job) = inner.queue.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.nonempty.wait(inner).unwrap();
        }
    }

    /// Close the queue: no new pushes; pops drain what remains.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        self.nonempty.notify_all();
    }

    /// Undispatched jobs currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().queue.len()
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// JSON string literal with escaping (mirrors the span-record escaper).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_scenarios::{builtin, CacheStatus};

    fn tiny_job(id: u64) -> Arc<Job> {
        Job::new(id, builtin("fig6-small").expect("builtin spec"))
    }

    fn fake_run(fail: bool) -> RunFn {
        Arc::new(move |spec, obs| {
            for (i, point) in sweep_points(spec).iter().enumerate() {
                obs.span(&SpanRecord {
                    index: i,
                    label: dcn_scenarios::point_label(point),
                    cache: if i == 0 {
                        CacheStatus::Miss
                    } else {
                        CacheStatus::Hit
                    },
                    shard: None,
                    wall_ms: 1.0,
                    stats: None,
                });
            }
            if fail {
                Err("engine exploded".into())
            } else {
                dcn_scenarios::run_scenario(spec, 1)
            }
        })
    }

    #[test]
    fn lifecycle_done_renders_reports_and_summary() {
        let job = tiny_job(1);
        assert_eq!(job.state(), JobState::Queued);
        assert!(job.points > 0);
        job.execute(&fake_run(false));
        assert_eq!(job.state(), JobState::Done);
        let snap = job.snapshot();
        assert_eq!(snap.done, job.points);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.hits, job.points - 1);
        assert!(job.report_json().is_some());
        assert!(job.report_csv().is_some());
        let (events, done) = job.wait_events(0, Duration::from_millis(1));
        assert!(done);
        assert_eq!(events.len(), job.points + 1);
        assert!(events.last().unwrap().contains("\"record\":\"summary\""));
        assert!(events[0].contains("\"record\":\"span\""));
        let status = snap.to_json();
        assert!(status.contains("\"record\":\"job\""));
        assert!(status.contains("\"state\":\"done\""));
        assert!(status.contains("\"error\":null"));
    }

    #[test]
    fn lifecycle_failed_captures_error() {
        let job = tiny_job(2);
        job.execute(&fake_run(true));
        assert_eq!(job.state(), JobState::Failed);
        let snap = job.snapshot();
        assert_eq!(snap.error.as_deref(), Some("engine exploded"));
        assert!(snap.to_json().contains("\"state\":\"failed\""));
        assert!(job.report_json().is_none());
    }

    #[test]
    fn queue_is_fifo_bounded_and_drains_after_close() {
        let q = JobQueue::new(2);
        q.push(tiny_job(1)).unwrap();
        q.push(tiny_job(2)).unwrap();
        let err = q.push(tiny_job(3)).unwrap_err();
        assert!(err.contains("full"), "{err}");
        q.close();
        assert!(q.push(tiny_job(4)).is_err());
        assert_eq!(q.pop().map(|j| j.id), Some(1));
        assert_eq!(q.pop().map(|j| j.id), Some(2));
        assert_eq!(q.pop().map(|j| j.id), None);
    }

    #[test]
    fn pop_blocks_until_push_from_another_thread() {
        let q = Arc::new(JobQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop().map(|j| j.id));
        std::thread::sleep(Duration::from_millis(20));
        q.push(tiny_job(7)).unwrap();
        assert_eq!(h.join().unwrap(), Some(7));
    }
}
