//! Hand-rolled HTTP/1.1, in the house style of the vendored JSON
//! parser: no dependencies, explicit state, hard input caps.
//!
//! The daemon speaks the smallest useful subset of HTTP/1.1:
//!
//! * one request per connection — every response carries
//!   `Connection: close`, so clients never need to parse framing beyond
//!   "read until EOF";
//! * request bodies are framed by `Content-Length` only (no chunked
//!   uploads — a TOML spec is a few KB);
//! * streaming responses (the NDJSON event feed) send headers without a
//!   `Content-Length` and are close-delimited, which every HTTP client
//!   and `curl` handle natively.
//!
//! Caps: request head (request line + headers) ≤ 64 KiB, body ≤ 4 MiB.
//! Anything over is a parse error, which the server turns into a 4xx.

use std::io::{Read, Write};

/// Request head cap: request line + headers.
pub const MAX_HEAD: usize = 64 * 1024;
/// Request body cap (a scenario spec is a few KB; 4 MiB is generous).
pub const MAX_BODY: usize = 4 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Method verb, uppercased by the client (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path, query string stripped (`/jobs/3/events`).
    pub path: String,
    /// Raw query string after `?`, empty when absent.
    pub query: String,
    /// Header name/value pairs; names lowercased for lookup.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length`-framed; empty when absent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == want)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse one request from a stream. Reads exactly the head plus the
/// declared body — nothing beyond — so the connection stays in a known
/// state for the response. Errors are human-readable and become 4xx.
pub fn parse_request(stream: &mut dyn Read) -> Result<Request, String> {
    let head = read_head(stream)?;
    let text = std::str::from_utf8(&head).map_err(|_| "request head is not UTF-8".to_string())?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(format!("malformed request line: {request_line:?}"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("malformed header line: {line:?}"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| format!("bad Content-Length: {v:?}"))?,
        None => 0,
    };
    if content_length > MAX_BODY {
        return Err(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY}-byte cap"
        ));
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| format!("short body read: {e}"))?;

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Read up to and including the `\r\n\r\n` head terminator, one byte at
/// a time (heads are tiny; simplicity beats buffering cleverness that
/// would over-read into the body).
fn read_head(stream: &mut dyn Read) -> Result<Vec<u8>, String> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return Err("connection closed before request head completed".into()),
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(format!("read error in request head: {e}")),
        }
        if head.ends_with(b"\r\n\r\n") {
            head.truncate(head.len() - 4);
            return Ok(head);
        }
        if head.len() > MAX_HEAD {
            return Err(format!("request head exceeds the {MAX_HEAD}-byte cap"));
        }
    }
}

/// Canonical reason phrase for the status codes the daemon uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Write a complete response: status line, `Content-Type`,
/// `Content-Length`, `Connection: close`, body. One call per connection.
pub fn write_response(
    stream: &mut dyn Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Write the head of a close-delimited streaming response (no
/// `Content-Length`); the caller then writes body bytes as they become
/// available and closes the connection to terminate.
pub fn write_stream_head(
    stream: &mut dyn Write,
    status: u16,
    content_type: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type
    );
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_post_with_body_and_query() {
        let raw = b"POST /jobs?pretty=1 HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = parse_request(&mut &raw[..]).expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.query, "pretty=1");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /jobs/3/events HTTP/1.1\r\n\r\n";
        let req = parse_request(&mut &raw[..]).expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/jobs/3/events");
        assert!(req.query.is_empty());
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage() {
        for raw in [
            &b"not http\r\n\r\n"[..],
            &b"GET\r\n\r\n"[..],
            &b"GET / SMTP/1.0\r\n\r\n"[..],
            &b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nContent-Length: tall\r\n\r\n"[..],
            &b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"[..],
        ] {
            assert!(parse_request(&mut &raw[..]).is_err(), "accepted {raw:?}");
        }
    }

    #[test]
    fn rejects_oversized_declared_body() {
        let raw = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        let err = parse_request(&mut raw.as_bytes()).unwrap_err();
        assert!(err.contains("cap"), "{err}");
    }

    #[test]
    fn response_writer_frames_with_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn stream_head_omits_content_length() {
        let mut out = Vec::new();
        write_stream_head(&mut out, 200, "application/x-ndjson").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(!text.contains("Content-Length"));
        assert!(text.ends_with("\r\n\r\n"));
    }
}
