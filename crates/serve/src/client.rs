//! A minimal HTTP client over `std::net::TcpStream`, matched to the
//! daemon's one-request-per-connection protocol: send one request, read
//! to EOF, split head from body. The integration tests and scripting
//! examples use it in place of curl.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A completed HTTP exchange.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code from the response line.
    pub status: u16,
    /// Raw body bytes (close-delimited, so streams arrive complete).
    pub body: Vec<u8>,
}

impl Response {
    /// Body as UTF-8 (lossy — diagnostics only go through here).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// `GET path` against `addr` (e.g. `127.0.0.1:8080`). Blocks until the
/// server closes the connection, so streaming endpoints return the full
/// stream.
pub fn get(addr: &str, path: &str) -> Result<Response, String> {
    request(addr, "GET", path, None)
}

/// `POST path` with a body (the daemon only ever takes TOML specs).
pub fn post(addr: &str, path: &str, body: &[u8]) -> Result<Response, String> {
    request(addr, "POST", path, Some(body))
}

fn request(addr: &str, method: &str, path: &str, body: Option<&[u8]>) -> Result<Response, String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.map_or(0, <[u8]>::len)
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.unwrap_or(&[])))
        .map_err(|e| format!("request write failed: {e}"))?;

    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("response read failed: {e}"))?;
    parse_response(&raw)
}

/// Split a raw `Connection: close` response into status + body.
fn parse_response(raw: &[u8]) -> Result<Response, String> {
    let sep = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("response has no header terminator")?;
    let head = std::str::from_utf8(&raw[..sep]).map_err(|_| "response head is not UTF-8")?;
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed status line: {status_line:?}"))?;
    Ok(Response {
        status,
        body: raw[sep + 4..].to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_and_body() {
        let raw = b"HTTP/1.1 201 Created\r\nContent-Type: application/json\r\n\r\n{\"id\":1}\n";
        let resp = parse_response(raw).expect("parses");
        assert_eq!(resp.status, 201);
        assert_eq!(resp.text(), "{\"id\":1}\n");
    }

    #[test]
    fn rejects_headerless_garbage() {
        assert!(parse_response(b"no terminator here").is_err());
        assert!(parse_response(b"NOT HTTP\r\n\r\nbody").is_err());
    }
}
