//! # dcn-serve
//!
//! The long-running results daemon behind `xp serve`: the "heavy
//! traffic from many users" front door that turns the batch pieces —
//! content-addressed result cache, `PointSource` executors, the span
//! stream, byte-stable JSON/CSV reports — into a service.
//!
//! ## The pieces
//!
//! * [`http`] — a dependency-free HTTP/1.1 layer over
//!   `std::net::TcpListener`, in the house style of the vendored JSON
//!   parser and FNV hasher: hand-rolled request parsing, explicit
//!   response writing, one request per connection (`Connection: close`).
//! * [`job`] — the job subsystem: a [`Job`] per submitted scenario with
//!   `queued → running → done | failed` states, a bounded FIFO
//!   [`JobQueue`] feeding the worker pool, and the per-job NDJSON event
//!   log (span/summary records in the exact grammar of
//!   `xp run --log-json`).
//! * [`server`] — the [`Server`]: accept loop, request routing, worker
//!   pool, and graceful shutdown (stop accepting, drain every queued and
//!   in-flight job, then return).
//! * [`html`] — the live dashboards: `GET /` (job table) and
//!   `GET /jobs/<id>/html` (per-job report tables rendered from the
//!   byte-stable CSV export).
//! * [`client`] — a minimal HTTP client over `std::net::TcpStream`, used
//!   by the integration tests and handy for scripting against the
//!   daemon without curl.
//!
//! ## Execution is injected
//!
//! The daemon does not know how to run a scenario; it is handed a
//! [`RunFn`] at construction. `dcn-runner` provides the production
//! implementation (`run_scenario_observed` over a `CachingSource`
//! against the shared `.xp-cache/`), so concurrent users dedup work
//! through the content-addressed cache while this crate stays a pure
//! scheduling and transport layer. The report bytes a job serves are the
//! `ScenarioOutput::to_json` / `to_csv` renderings — **byte-identical to
//! `xp run` output by construction**, and pinned by integration tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod html;
pub mod http;
pub mod job;
pub mod server;

use dcn_scenarios::{Observer, ScenarioOutput, ScenarioSpec};
use std::sync::Arc;

/// How the daemon executes one scenario: the injected run function.
/// Implementations must report one span per point through the observer
/// (the job records them as its NDJSON event stream) and return the
/// scenario output whose JSON/CSV renderings become the job's reports.
pub type RunFn =
    Arc<dyn Fn(&ScenarioSpec, &dyn Observer) -> Result<ScenarioOutput, String> + Send + Sync>;

/// Renders a cache statistics NDJSON record for the dashboard and the
/// `GET /cache` endpoint (`dcn-runner` wires `xp cache stat --json`'s
/// renderer here).
pub type StatFn = Arc<dyn Fn() -> String + Send + Sync>;

pub use job::{Job, JobQueue, JobSnapshot, JobState};
pub use server::{ServeConfig, Server};
