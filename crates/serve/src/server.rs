//! The daemon itself: accept loop, request routing, worker pool, and
//! graceful shutdown.
//!
//! ## Endpoints
//!
//! | Method | Path                     | Response                                   |
//! |--------|--------------------------|--------------------------------------------|
//! | POST   | `/jobs`                  | 201 + job status (body: TOML spec)         |
//! | GET    | `/jobs`                  | NDJSON, one job record per line            |
//! | GET    | `/jobs/<id>`             | job status record (state, progress, ETA)   |
//! | GET    | `/jobs/<id>/events`      | NDJSON live stream: spans, then summary    |
//! | GET    | `/jobs/<id>/report.json` | the `xp run --json` bytes                  |
//! | GET    | `/jobs/<id>/report.csv`  | the `xp run --csv` bytes                   |
//! | GET    | `/jobs/<id>/html`        | per-job dashboard                          |
//! | GET    | `/`                      | job-table dashboard                        |
//! | GET    | `/cache`                 | cache-stat NDJSON record (via [`StatFn`])  |
//! | POST   | `/shutdown`              | 200, then graceful drain                   |
//!
//! ## Shutdown
//!
//! `POST /shutdown` (or [`Server::shutdown`]) closes the queue and
//! stops the accept loop; [`Server::serve`] then joins the workers —
//! which drain every queued job — and the open connection handlers
//! before returning. Nothing accepted is ever dropped.

use crate::http::{parse_request, write_response, write_stream_head, Request};
use crate::job::{Job, JobQueue, JobState};
use crate::{html, RunFn, StatFn};
use dcn_scenarios::ScenarioSpec;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How the daemon is wired: pool sizing plus the injected execution and
/// cache-stat functions (see [`RunFn`], [`StatFn`]).
pub struct ServeConfig {
    /// Worker threads executing jobs (≥ 1).
    pub workers: usize,
    /// Bound on undispatched jobs; pushes beyond it get 503.
    pub queue_cap: usize,
    /// Executes one scenario, reporting spans to the job.
    pub run: RunFn,
    /// Renders the cache-stat NDJSON record for `GET /cache`.
    pub cache_stat: Option<StatFn>,
}

/// Shared server state: the job registry, the queue, and the stop flag.
struct Shared {
    jobs: Mutex<Vec<Arc<Job>>>,
    queue: JobQueue,
    stopping: AtomicBool,
    run: RunFn,
    cache_stat: Option<StatFn>,
}

impl Shared {
    fn job(&self, id: u64) -> Option<Arc<Job>> {
        let jobs = self.jobs.lock().unwrap();
        jobs.iter().find(|j| j.id == id).cloned()
    }

    fn snapshots(&self) -> Vec<crate::JobSnapshot> {
        let jobs = self.jobs.lock().unwrap();
        jobs.iter().map(|j| j.snapshot()).collect()
    }

    fn submit(&self, spec: ScenarioSpec) -> Result<Arc<Job>, (u16, String)> {
        let mut jobs = self.jobs.lock().unwrap();
        let id = jobs.len() as u64 + 1;
        let job = Job::new(id, spec);
        // Register before queueing so a worker that grabs the job
        // instantly still has it visible under /jobs/<id>.
        jobs.push(Arc::clone(&job));
        if let Err(e) = self.queue.push(Arc::clone(&job)) {
            jobs.pop();
            return Err((503, e));
        }
        Ok(job)
    }
}

/// The `xp serve` daemon: bind, then [`serve`](Server::serve) until a
/// shutdown request drains it.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:8080`; port 0 picks an ephemeral
    /// port — the integration tests' friend).
    pub fn bind(addr: &str, cfg: ServeConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                jobs: Mutex::new(Vec::new()),
                queue: JobQueue::new(cfg.queue_cap),
                stopping: AtomicBool::new(false),
                run: cfg.run,
                cache_stat: cfg.cache_stat,
            }),
            workers: cfg.workers.max(1),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// A handle that can stop the server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
            addr: self.local_addr(),
        }
    }

    /// Run until shutdown: accept connections, dispatch jobs to the
    /// worker pool, then drain. Returns once every queued job has run
    /// and every open connection handler has finished.
    pub fn serve(self) -> Result<(), String> {
        let mut worker_handles = Vec::with_capacity(self.workers);
        for _ in 0..self.workers {
            let shared = Arc::clone(&self.shared);
            worker_handles.push(std::thread::spawn(move || {
                // Pop returns None only when the queue is closed and
                // drained, so queued jobs always complete.
                while let Some(job) = shared.queue.pop() {
                    job.execute(&shared.run);
                }
            }));
        }

        let mut conn_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.stopping.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let shared = Arc::clone(&self.shared);
            conn_handles.push(std::thread::spawn(move || {
                handle_connection(stream, &shared)
            }));
            // Opportunistically reap finished handlers so a long-lived
            // daemon doesn't accumulate join handles.
            conn_handles.retain(|h| !h.is_finished());
        }

        // Drain: close the queue (workers finish queued jobs and exit),
        // then wait for workers and any open connections.
        self.shared.queue.close();
        for h in worker_handles {
            let _ = h.join();
        }
        for h in conn_handles {
            let _ = h.join();
        }
        Ok(())
    }
}

/// Stops a running [`Server`] from another thread: sets the stop flag,
/// closes the queue, and wakes the blocking accept loop by connecting
/// to it.
pub struct ShutdownHandle {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
}

impl ShutdownHandle {
    /// Request shutdown. Idempotent; returns immediately (the serve
    /// loop drains in its own thread).
    pub fn shutdown(&self) {
        request_shutdown(&self.shared, self.addr);
    }
}

fn request_shutdown(shared: &Shared, addr: std::net::SocketAddr) {
    if shared.stopping.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue.close();
    // The accept loop blocks in `incoming()`; a no-op connection wakes
    // it so it can observe the stop flag.
    let _ = TcpStream::connect(addr);
}

/// How long an events stream waits for news before emitting nothing and
/// re-checking (bounds how long a reader can pin a handler thread after
/// shutdown).
const EVENT_POLL: Duration = Duration::from_millis(250);

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    // Generous guards so a stuck peer cannot pin a handler forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let req = match parse_request(&mut stream) {
        Ok(req) => req,
        Err(e) => {
            respond_error(&mut stream, 400, &e);
            return;
        }
    };
    route(&mut stream, &req, shared);
}

fn route(stream: &mut TcpStream, req: &Request, shared: &Shared) {
    let parts: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), parts.as_slice()) {
        ("GET", []) => {
            let page = html::dashboard(&shared.snapshots(), shared.queue.len());
            let _ = write_response(stream, 200, "text/html; charset=utf-8", page.as_bytes());
        }
        ("POST", ["jobs"]) => post_job(stream, req, shared),
        ("GET", ["jobs"]) => {
            let mut body = String::new();
            for snap in shared.snapshots() {
                body.push_str(&snap.to_json());
                body.push('\n');
            }
            let _ = write_response(stream, 200, "application/x-ndjson", body.as_bytes());
        }
        ("GET", ["jobs", id]) => with_job(stream, id, shared, |stream, job| {
            let body = format!("{}\n", job.snapshot().to_json());
            let _ = write_response(stream, 200, "application/json", body.as_bytes());
        }),
        ("GET", ["jobs", id, "events"]) => with_job(stream, id, shared, |stream, job| {
            stream_events(stream, job, shared)
        }),
        ("GET", ["jobs", id, "report.json"]) => {
            with_job(stream, id, shared, |stream, job| match job.report_json() {
                Some(body) => {
                    let _ = write_response(stream, 200, "application/json", body.as_bytes());
                }
                None => respond_no_report(stream, job),
            })
        }
        ("GET", ["jobs", id, "report.csv"]) => {
            with_job(stream, id, shared, |stream, job| match job.report_csv() {
                Some(body) => {
                    let _ = write_response(stream, 200, "text/csv", body.as_bytes());
                }
                None => respond_no_report(stream, job),
            })
        }
        ("GET", ["jobs", id, "html"]) => with_job(stream, id, shared, |stream, job| {
            let page = html::job_page(&job.snapshot(), job.report_csv().as_deref());
            let _ = write_response(stream, 200, "text/html; charset=utf-8", page.as_bytes());
        }),
        ("GET", ["cache"]) => match &shared.cache_stat {
            Some(stat) => {
                let body = format!("{}\n", stat());
                let _ = write_response(stream, 200, "application/x-ndjson", body.as_bytes());
            }
            None => respond_error(stream, 404, "no cache configured"),
        },
        ("POST", ["shutdown"]) => {
            let _ = write_response(stream, 200, "application/json", b"{\"shutdown\":true}\n");
            let addr = stream
                .local_addr()
                .expect("connected socket has an address");
            request_shutdown(shared, addr);
        }
        (_, []) | (_, ["jobs", ..]) | (_, ["cache"]) | (_, ["shutdown"]) => {
            respond_error(
                stream,
                405,
                &format!("method {} not allowed here", req.method),
            );
        }
        _ => respond_error(stream, 404, &format!("no such resource: {}", req.path)),
    }
}

fn post_job(stream: &mut TcpStream, req: &Request, shared: &Shared) {
    let Ok(body) = std::str::from_utf8(&req.body) else {
        respond_error(stream, 400, "spec body is not UTF-8");
        return;
    };
    let spec = match ScenarioSpec::from_toml(body) {
        Ok(spec) => spec,
        Err(e) => {
            respond_error(stream, 400, &format!("bad scenario spec: {e}"));
            return;
        }
    };
    match shared.submit(spec) {
        Ok(job) => {
            let body = format!("{}\n", job.snapshot().to_json());
            let _ = write_response(stream, 201, "application/json", body.as_bytes());
        }
        Err((status, e)) => respond_error(stream, status, &e),
    }
}

/// Stream the job's NDJSON event log live: everything so far, then new
/// lines as points complete, closing once the job is terminal (the
/// summary record is always the last line of a completed stream).
fn stream_events(stream: &mut TcpStream, job: &Arc<Job>, shared: &Shared) {
    if write_stream_head(stream, 200, "application/x-ndjson").is_err() {
        return;
    }
    let mut sent = 0usize;
    loop {
        let (lines, terminal) = job.wait_events(sent, EVENT_POLL);
        sent += lines.len();
        for line in &lines {
            if stream.write_all(line.as_bytes()).is_err() || stream.write_all(b"\n").is_err() {
                return;
            }
        }
        if stream.flush().is_err() {
            return;
        }
        if terminal {
            return;
        }
        // A queued job can never finish once the server is draining a
        // shutdown with no workers left; don't pin the handler.
        if shared.stopping.load(Ordering::SeqCst) && job.state() == JobState::Queued {
            return;
        }
    }
}

fn with_job(
    stream: &mut TcpStream,
    id: &str,
    shared: &Shared,
    f: impl FnOnce(&mut TcpStream, &Arc<Job>),
) {
    let Ok(id) = id.parse::<u64>() else {
        respond_error(stream, 404, &format!("bad job id: {id:?}"));
        return;
    };
    match shared.job(id) {
        Some(job) => f(stream, &job),
        None => respond_error(stream, 404, &format!("no such job: {id}")),
    }
}

fn respond_no_report(stream: &mut TcpStream, job: &Arc<Job>) {
    let snap = job.snapshot();
    let msg = match snap.error {
        Some(e) => format!("job {} failed: {e}", job.id),
        None => format!(
            "job {} is {}; report not ready",
            job.id,
            snap.state.as_str()
        ),
    };
    respond_error(stream, 404, &msg);
}

fn respond_error(stream: &mut TcpStream, status: u16, msg: &str) {
    let body = format!("{{\"error\":{}}}\n", crate::job::json_str(msg));
    let _ = write_response(stream, status, "application/json", body.as_bytes());
}
