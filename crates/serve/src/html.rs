//! Static HTML dashboards, rendered server-side from the same
//! byte-stable data the JSON endpoints serve: the job table from
//! [`JobSnapshot`]s, the per-job report tables from the CSV export.
//! No JavaScript — pages carry a `meta refresh` while work is live, so
//! "live" dashboards are just re-rendered snapshots.

use crate::job::{JobSnapshot, JobState};

const STYLE: &str = "<style>\n\
    body{font-family:monospace;margin:2em;background:#fdfdfd;color:#222}\n\
    table{border-collapse:collapse;margin:1em 0}\n\
    th,td{border:1px solid #bbb;padding:.25em .6em;text-align:right}\n\
    th{background:#eee}td:first-child,th:first-child{text-align:left}\n\
    .queued{color:#888}.running{color:#06c}.done{color:#080}.failed{color:#c00}\n\
    a{color:#06c}\n\
    </style>\n";

/// The front page: one row per job, newest first, plus queue depth.
/// Auto-refreshes while any job is live.
pub fn dashboard(jobs: &[JobSnapshot], queued: usize) -> String {
    let live = jobs.iter().any(|j| !j.state.is_terminal());
    let mut page = page_head("xp serve", live);
    page.push_str(&format!(
        "<h1>xp serve</h1>\n<p>{} job(s), {} queued</p>\n",
        jobs.len(),
        queued
    ));
    page.push_str(
        "<table>\n<tr><th>job</th><th>scenario</th><th>kind</th><th>state</th>\
         <th>progress</th><th>hits</th><th>misses</th><th>wall ms</th><th>eta ms</th>\
         <th>report</th></tr>\n",
    );
    for j in jobs.iter().rev() {
        let eta = match j.eta_ms {
            Some(ms) => format!("{ms:.0}"),
            None => "—".into(),
        };
        let report = if j.state == JobState::Done {
            format!(
                "<a href=\"/jobs/{0}/report.json\">json</a> \
                 <a href=\"/jobs/{0}/report.csv\">csv</a>",
                j.id
            )
        } else {
            "—".into()
        };
        page.push_str(&format!(
            "<tr><td><a href=\"/jobs/{id}/html\">#{id}</a></td><td>{name}</td>\
             <td>{kind}</td><td class=\"{state}\">{state}</td><td>{done}/{points}</td>\
             <td>{hits}</td><td>{misses}</td><td>{wall:.1}</td><td>{eta}</td>\
             <td>{report}</td></tr>\n",
            id = j.id,
            name = escape(&j.name),
            kind = j.kind,
            state = j.state.as_str(),
            done = j.done,
            points = j.points,
            hits = j.hits,
            misses = j.misses,
            wall = j.wall_ms,
            eta = eta,
            report = report,
        ));
    }
    page.push_str("</table>\n</body></html>\n");
    page
}

/// One job's page: status line, failure message if any, and — once done
/// — the report rendered as an HTML table straight from the byte-stable
/// CSV export (the CSV is the contract; the table is just a view).
pub fn job_page(snap: &JobSnapshot, report_csv: Option<&str>) -> String {
    let live = !snap.state.is_terminal();
    let mut page = page_head(&format!("job #{}", snap.id), live);
    page.push_str(&format!(
        "<h1>job #{id} — {name}</h1>\n\
         <p class=\"{state}\">{state}</p>\n\
         <p>kind {kind} · {done}/{points} points · {hits} hits · {misses} misses · \
         {wall:.1} ms</p>\n\
         <p><a href=\"/\">all jobs</a> · <a href=\"/jobs/{id}/events\">events</a>",
        id = snap.id,
        name = escape(&snap.name),
        state = snap.state.as_str(),
        kind = snap.kind,
        done = snap.done,
        points = snap.points,
        hits = snap.hits,
        misses = snap.misses,
        wall = snap.wall_ms,
    ));
    if snap.state == JobState::Done {
        page.push_str(&format!(
            " · <a href=\"/jobs/{0}/report.json\">report.json</a> · \
             <a href=\"/jobs/{0}/report.csv\">report.csv</a>",
            snap.id
        ));
    }
    page.push_str("</p>\n");
    if let Some(error) = &snap.error {
        page.push_str(&format!(
            "<p class=\"failed\">error: {}</p>\n",
            escape(error)
        ));
    }
    if let Some(csv) = report_csv {
        page.push_str(&csv_table(csv));
    }
    page.push_str("</body></html>\n");
    page
}

fn page_head(title: &str, live: bool) -> String {
    let refresh = if live {
        "<meta http-equiv=\"refresh\" content=\"2\">\n"
    } else {
        ""
    };
    format!(
        "<!doctype html>\n<html><head><meta charset=\"utf-8\">\n{refresh}\
         <title>{}</title>\n{STYLE}</head><body>\n",
        escape(title)
    )
}

/// Render a CSV export as an HTML table (first line is the header; the
/// repo's CSV never quotes or embeds commas, so a plain split is exact).
fn csv_table(csv: &str) -> String {
    let mut out = String::from("<table>\n");
    for (i, line) in csv.lines().enumerate() {
        let tag = if i == 0 { "th" } else { "td" };
        out.push_str("<tr>");
        for field in line.split(',') {
            out.push_str(&format!("<{tag}>{}</{tag}>", escape(field)));
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</table>\n");
    out
}

/// Minimal HTML escaping for text content and attribute values.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(state: JobState) -> JobSnapshot {
        JobSnapshot {
            id: 3,
            name: "fig6-small".into(),
            kind: "sweep",
            state,
            points: 2,
            done: if state == JobState::Done { 2 } else { 1 },
            hits: 1,
            misses: 1,
            wall_ms: 12.5,
            eta_ms: None,
            error: None,
        }
    }

    #[test]
    fn dashboard_lists_jobs_and_refreshes_while_live() {
        let page = dashboard(&[snap(JobState::Running)], 1);
        assert!(page.contains("meta http-equiv=\"refresh\""));
        assert!(page.contains("fig6-small"));
        assert!(page.contains("/jobs/3/html"));
        let done = dashboard(&[snap(JobState::Done)], 0);
        assert!(!done.contains("meta http-equiv=\"refresh\""));
        assert!(done.contains("/jobs/3/report.json"));
    }

    #[test]
    fn job_page_renders_csv_as_table_and_escapes() {
        let page = job_page(&snap(JobState::Done), Some("algo,load\npowertcp,0.6\n"));
        assert!(page.contains("<th>algo</th><th>load</th>"));
        assert!(page.contains("<td>powertcp</td><td>0.6</td>"));
        let mut failed = snap(JobState::Failed);
        failed.error = Some("<bad & worse>".into());
        let page = job_page(&failed, None);
        assert!(page.contains("&lt;bad &amp; worse&gt;"));
        assert!(!page.contains("<bad"));
    }
}
