//! The congestion-control interface shared by PowerTCP and every baseline.
//!
//! The paper evaluates sender-side, window-based (or rate-based) congestion
//! control in an RDMA-style deployment: per-packet ACKs, NIC pacing, and —
//! for the INT-based algorithms — an echoed telemetry stack on each ACK.
//! This trait is the narrow waist between the transport machinery
//! (`dcn-transport`) and the control laws (`powertcp-core`,
//! `cc-baselines`): the transport feeds signals in, the algorithm exposes a
//! congestion window and a pacing rate.

use crate::int::IntHeader;
use crate::time::Tick;
use crate::units::Bandwidth;

/// Static per-flow context handed to an algorithm at construction time.
#[derive(Clone, Copy, Debug)]
pub struct CcContext {
    /// Base (unloaded) round-trip time `τ`. The paper configures this to
    /// the maximum RTT of the topology for PowerTCP and HPCC.
    pub base_rtt: Tick,
    /// Host NIC bandwidth (used for the initial window `HostBw × τ` and
    /// the additive-increase share `β = HostBw × τ / N`).
    pub host_bw: Bandwidth,
    /// Maximum transmission unit in bytes (data payload per packet).
    pub mtu: u32,
    /// Expected number of flows sharing the host NIC (`N` in the paper's
    /// additive-increase rule).
    pub expected_flows: u32,
}

impl CcContext {
    /// Bandwidth-delay product `HostBw × τ` in bytes — the paper's initial
    /// window, letting a new flow transmit at line rate for one RTT.
    pub fn host_bdp_bytes(&self) -> f64 {
        self.host_bw.bdp_bytes(self.base_rtt)
    }

    /// The paper's additive increase `β = HostBw × τ / N` in bytes.
    pub fn beta_bytes(&self) -> f64 {
        self.host_bdp_bytes() / self.expected_flows.max(1) as f64
    }
}

impl Default for CcContext {
    fn default() -> Self {
        CcContext {
            base_rtt: Tick::from_micros(20),
            host_bw: Bandwidth::gbps(25),
            mtu: 1000,
            expected_flows: 1,
        }
    }
}

/// Everything an algorithm may observe when an ACK arrives.
#[derive(Clone, Copy, Debug)]
pub struct AckInfo<'a> {
    /// Arrival time of the ACK at the sender.
    pub now: Tick,
    /// Cumulative acknowledgment: next byte the receiver expects.
    pub ack_seq: u64,
    /// Bytes newly acknowledged by this ACK (0 for a duplicate ACK).
    pub newly_acked: u64,
    /// Sender's current `snd_nxt` (highest byte sent + 1); used by
    /// algorithms that update reference state once per RTT.
    pub snd_nxt: u64,
    /// RTT sample measured from the echoed transmit timestamp.
    pub rtt: Tick,
    /// Echoed INT stack from the data path, if telemetry is enabled.
    pub int: Option<&'a IntHeader>,
    /// ECN-echo: the acknowledged data packet carried a CE mark.
    pub ecn_marked: bool,
}

/// Loss signals delivered by the transport.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossKind {
    /// Out-of-order delivery detected by the receiver (NACK / dup-ACK):
    /// fast-retransmit-class signal.
    Reorder,
    /// Retransmission timeout fired.
    Timeout,
}

/// Out-of-band network signals. Only algorithms that are explicitly
/// circuit-aware (reTCP) react to these; the default implementation
/// ignores them, which is exactly the behaviour of every classic CC.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetSignal {
    /// A reconfigurable-datacenter circuit serving this flow's rack pair
    /// changed state.
    Circuit {
        /// `true`: the circuit just came up; `false`: it went down.
        up: bool,
        /// Bandwidth the circuit provides while up.
        bandwidth: Bandwidth,
    },
}

/// A sender-side congestion control algorithm.
///
/// Implementations own all their state; the transport only reads
/// [`cwnd`](CongestionControl::cwnd) and
/// [`pacing_rate`](CongestionControl::pacing_rate) after delivering events.
/// Window-based algorithms (PowerTCP, HPCC, DCTCP) derive the pacing rate
/// from the window (`rate = cwnd / τ`); rate-based algorithms (TIMELY,
/// DCQCN) derive a large window from the rate so that pacing is the binding
/// constraint.
pub trait CongestionControl {
    /// Process one ACK.
    fn on_ack(&mut self, ack: &AckInfo<'_>);

    /// Process a loss signal.
    fn on_loss(&mut self, now: Tick, kind: LossKind);

    /// Process an out-of-band network signal (default: ignore).
    fn on_signal(&mut self, _now: Tick, _signal: NetSignal) {}

    /// Timer hook for algorithms with autonomous clocks (DCQCN's alpha
    /// update and rate-increase timers). Returns the next wakeup, if any.
    /// The transport guarantees a call at (or after) the returned instant.
    fn poll_timer(&mut self, _now: Tick) -> Option<Tick> {
        None
    }

    /// Current congestion window in bytes.
    fn cwnd(&self) -> f64;

    /// Current pacing rate.
    fn pacing_rate(&self) -> Bandwidth;

    /// The smoothed normalized power estimate Γ this algorithm currently
    /// holds, if it is power-based (PowerTCP / θ-PowerTCP). Telemetry
    /// probes sample this; `None` for every other algorithm.
    fn norm_power(&self) -> Option<f64> {
        None
    }

    /// Short algorithm name for reports ("powertcp", "hpcc", ...).
    fn name(&self) -> &'static str;
}

/// Clamp helper shared by the control laws: keeps windows inside
/// `[min_cwnd, max_cwnd]` and finite. A window below one MTU is still
/// meaningful (the pacing rate scales with it), but zero or negative
/// windows would deadlock the transport.
pub fn clamp_cwnd(cwnd: f64, min_cwnd: f64, max_cwnd: f64) -> f64 {
    if !cwnd.is_finite() {
        return max_cwnd;
    }
    cwnd.clamp(min_cwnd, max_cwnd)
}

/// Derive a pacing rate from a window (`rate = cwnd / τ`), saturating at
/// the host line rate.
pub fn rate_from_cwnd(cwnd_bytes: f64, base_rtt: Tick, host_bw: Bandwidth) -> Bandwidth {
    let rtt_s = base_rtt.as_secs_f64();
    if rtt_s <= 0.0 {
        return host_bw;
    }
    let bps = (cwnd_bytes * 8.0 / rtt_s).round();
    let capped = bps.min(host_bw.bps() as f64).max(0.0);
    Bandwidth::from_bps(capped as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_derived_quantities() {
        let ctx = CcContext {
            base_rtt: Tick::from_micros(20),
            host_bw: Bandwidth::gbps(25),
            mtu: 1000,
            expected_flows: 10,
        };
        assert!((ctx.host_bdp_bytes() - 62_500.0).abs() < 1e-9);
        assert!((ctx.beta_bytes() - 6_250.0).abs() < 1e-9);
    }

    #[test]
    fn beta_never_divides_by_zero() {
        let ctx = CcContext {
            expected_flows: 0,
            ..CcContext::default()
        };
        assert!(ctx.beta_bytes().is_finite());
    }

    #[test]
    fn clamp_handles_nonfinite() {
        assert_eq!(clamp_cwnd(f64::NAN, 1.0, 10.0), 10.0);
        assert_eq!(clamp_cwnd(f64::INFINITY, 1.0, 10.0), 10.0);
        assert_eq!(clamp_cwnd(-5.0, 1.0, 10.0), 1.0);
        assert_eq!(clamp_cwnd(5.0, 1.0, 10.0), 5.0);
    }

    #[test]
    fn rate_from_cwnd_caps_at_line_rate() {
        let bw = Bandwidth::gbps(25);
        let rtt = Tick::from_micros(20);
        // Window of exactly one BDP -> line rate.
        let r = rate_from_cwnd(62_500.0, rtt, bw);
        assert_eq!(r, bw);
        // Double BDP -> still capped at line rate.
        let r = rate_from_cwnd(125_000.0, rtt, bw);
        assert_eq!(r, bw);
        // Half BDP -> half line rate.
        let r = rate_from_cwnd(31_250.0, rtt, bw);
        assert_eq!(r, Bandwidth::from_bps(12_500_000_000));
    }
}
