//! PowerTCP (Algorithm 1): the paper's primary contribution.
//!
//! Window update on every ACK (Eq. 7):
//!
//! ```text
//! w ← γ · ( w_old / Γ_norm + β ) + (1 − γ) · w
//! ```
//!
//! where `Γ_norm = f(t)/e` is the smoothed normalized power from the INT
//! feedback ([`PowerEstimator`]), `w_old` is the window at the time the
//! acknowledged segment was transmitted (approximated, as in the paper, by
//! a snapshot refreshed once per RTT), `γ ∈ (0,1]` is the EWMA gain and
//! `β = HostBw·τ/N` the additive increase.

use crate::cc::{clamp_cwnd, rate_from_cwnd, AckInfo, CcContext, CongestionControl, LossKind};
use crate::config::{PowerTcpConfig, UpdateInterval};
use crate::power::PowerEstimator;
use crate::time::Tick;
use crate::units::Bandwidth;

/// Multiplicative back-off applied on a retransmission timeout. The paper
/// does not specify loss handling (its deployment is effectively lossless);
/// halving on timeout is the conventional conservative choice and only
/// matters under pathological buffer pressure.
const TIMEOUT_BACKOFF: f64 = 0.5;

/// The INT-based PowerTCP sender.
#[derive(Clone, Debug)]
pub struct PowerTcp {
    cfg: PowerTcpConfig,
    ctx: CcContext,
    estimator: PowerEstimator,
    cwnd: f64,
    /// `w_old`: window snapshot taken once per RTT (UPDATEOLD in Alg. 1).
    cwnd_old: f64,
    /// When `ack_seq` passes this point, one RTT has elapsed since the
    /// snapshot and `cwnd_old` is refreshed.
    update_seq: u64,
    /// Gate for [`UpdateInterval::PerRtt`] mode.
    rtt_gate_seq: u64,
    min_cwnd: f64,
    max_cwnd: f64,
}

impl PowerTcp {
    /// Create a PowerTCP instance for one flow.
    pub fn new(cfg: PowerTcpConfig, ctx: CcContext) -> Self {
        let init = ctx.host_bdp_bytes();
        PowerTcp {
            cfg,
            ctx,
            estimator: PowerEstimator::new(ctx.base_rtt),
            cwnd: init,
            cwnd_old: init,
            update_seq: 0,
            rtt_gate_seq: 0,
            min_cwnd: cfg.min_cwnd_bytes,
            max_cwnd: init * cfg.max_cwnd_factor,
        }
    }

    /// The additive-increase term β in bytes.
    pub fn beta(&self) -> f64 {
        self.cfg
            .beta_override_bytes
            .unwrap_or_else(|| self.ctx.beta_bytes())
    }

    fn update_window(&mut self, norm_power: f64, ack: &AckInfo<'_>) {
        let gamma = self.cfg.gamma;
        let new = gamma * (self.cwnd_old / norm_power + self.beta()) + (1.0 - gamma) * self.cwnd;
        self.cwnd = clamp_cwnd(new, self.min_cwnd, self.max_cwnd);
        // UPDATEOLD: refresh the per-RTT snapshot when this ACK covers the
        // snapshot sequence point.
        if ack.ack_seq >= self.update_seq {
            self.cwnd_old = self.cwnd;
            self.update_seq = ack.snd_nxt;
        }
    }
}

impl CongestionControl for PowerTcp {
    fn on_ack(&mut self, ack: &AckInfo<'_>) {
        let Some(int) = ack.int else {
            // No telemetry on this ACK (e.g. a control packet): PowerTCP
            // cannot compute power; hold the window.
            return;
        };
        if let Some(sample) = self.estimator.update(int) {
            if self.cfg.update_interval == UpdateInterval::PerRtt {
                if ack.ack_seq < self.rtt_gate_seq {
                    return; // power already folded into the estimator
                }
                self.rtt_gate_seq = ack.snd_nxt;
            }
            self.update_window(sample.smoothed, ack);
        } else if ack.ack_seq >= self.update_seq {
            // Bootstrap path: still rotate the snapshot so the first real
            // update uses a fresh w_old.
            self.cwnd_old = self.cwnd;
            self.update_seq = ack.snd_nxt;
        }
    }

    fn on_loss(&mut self, _now: Tick, kind: LossKind) {
        if kind == LossKind::Timeout {
            self.cwnd = clamp_cwnd(self.cwnd * TIMEOUT_BACKOFF, self.min_cwnd, self.max_cwnd);
            self.cwnd_old = self.cwnd;
        }
        // Reorder NACKs carry no congestion information that INT does not
        // already deliver more precisely; PowerTCP reacts through power.
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn pacing_rate(&self) -> Bandwidth {
        rate_from_cwnd(self.cwnd, self.ctx.base_rtt, self.ctx.host_bw)
    }

    fn norm_power(&self) -> Option<f64> {
        Some(self.estimator.smoothed())
    }

    fn name(&self) -> &'static str {
        "powertcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::int::{IntHeader, IntHopMetadata};

    fn ctx() -> CcContext {
        CcContext {
            base_rtt: Tick::from_micros(20),
            host_bw: Bandwidth::gbps(25),
            mtu: 1000,
            expected_flows: 10,
        }
    }

    fn int_header(ts: Tick, qlen: u64, tx_bytes: u64, bw: Bandwidth) -> IntHeader {
        let mut h = IntHeader::new();
        h.push(IntHopMetadata {
            node: 1,
            port: 0,
            qlen_bytes: qlen,
            ts,
            tx_bytes,
            bandwidth: bw,
        });
        h
    }

    fn ack_info<'a>(now: Tick, seq: u64, int: &'a IntHeader) -> AckInfo<'a> {
        AckInfo {
            now,
            ack_seq: seq,
            newly_acked: 1000,
            snd_nxt: seq + 60_000,
            rtt: Tick::from_micros(22),
            int: Some(int),
            ecn_marked: false,
        }
    }

    #[test]
    fn initial_window_is_host_bdp() {
        let p = PowerTcp::new(PowerTcpConfig::default(), ctx());
        assert!((p.cwnd() - 62_500.0).abs() < 1e-9);
        // Initial pacing is line rate (paper: transmit at line rate in the
        // first RTT to discover bottleneck state).
        assert_eq!(p.pacing_rate(), Bandwidth::gbps(25));
    }

    #[test]
    fn beta_follows_paper_rule() {
        let p = PowerTcp::new(PowerTcpConfig::default(), ctx());
        // HostBw*tau/N = 62500/10
        assert!((p.beta() - 6_250.0).abs() < 1e-9);
        let cfg = PowerTcpConfig {
            beta_override_bytes: Some(100.0),
            ..PowerTcpConfig::default()
        };
        let p = PowerTcp::new(cfg, ctx());
        assert!((p.beta() - 100.0).abs() < 1e-9);
    }

    /// Drive the sender against a synthetic single-bottleneck: queue grows
    /// when the aggregate (here: single) window exceeds BDP. The window
    /// must converge near BDP + β and the queue near β (paper equilibrium).
    #[test]
    fn closed_loop_converges_to_paper_equilibrium() {
        let c = ctx();
        let bw = Bandwidth::gbps(25);
        let b = bw.bytes_per_sec();
        let tau = c.base_rtt.as_secs_f64();
        let bdp = b * tau;
        // Uncap the window: this test drives the raw law to an equilibrium
        // slightly above one BDP (w_e = bτ + β̂) on a bottleneck equal to
        // the host line rate.
        let cfg = PowerTcpConfig {
            max_cwnd_factor: 2.0,
            ..PowerTcpConfig::default()
        };
        let mut p = PowerTcp::new(cfg, ctx());

        // Discrete bottleneck model, one "ACK" per millirtt step.
        let dt = Tick::from_micros(2);
        let dts = dt.as_secs_f64();
        let mut q: f64 = 0.0;
        let mut now = Tick::from_micros(100);
        let mut tx_bytes: f64 = 0.0;
        let mut seq = 0u64;
        for _ in 0..4000 {
            // Arrival rate implied by the window (fluid model λ = w/θ).
            let theta = tau + q / b;
            let lambda = p.cwnd() / theta;
            let mu = if q > 0.0 || lambda >= b { b } else { lambda };
            q = (q + (lambda - mu) * dts).max(0.0);
            tx_bytes += mu * dts;
            now += dt;
            seq += 1000;
            let h = int_header(now, q.round() as u64, tx_bytes.round() as u64, bw);
            let a = ack_info(now, seq, &h);
            p.on_ack(&a);
        }
        let we = bdp + p.beta();
        let qe = p.beta();
        assert!(
            (p.cwnd() - we).abs() / we < 0.05,
            "cwnd={} expected≈{}",
            p.cwnd(),
            we
        );
        assert!(
            (q - qe).abs() < 0.35 * qe + 2000.0,
            "queue={} expected≈{}",
            q,
            qe
        );
    }

    #[test]
    fn ack_without_int_holds_window() {
        let mut p = PowerTcp::new(PowerTcpConfig::default(), ctx());
        let before = p.cwnd();
        let a = AckInfo {
            now: Tick::from_micros(50),
            ack_seq: 1000,
            newly_acked: 1000,
            snd_nxt: 60_000,
            rtt: Tick::from_micros(21),
            int: None,
            ecn_marked: false,
        };
        p.on_ack(&a);
        assert_eq!(p.cwnd(), before);
    }

    #[test]
    fn timeout_halves_window() {
        let mut p = PowerTcp::new(PowerTcpConfig::default(), ctx());
        let before = p.cwnd();
        p.on_loss(Tick::from_micros(10), LossKind::Timeout);
        assert!((p.cwnd() - before * 0.5).abs() < 1e-9);
        // Reorder signal alone does not touch the window.
        let w = p.cwnd();
        p.on_loss(Tick::from_micros(11), LossKind::Reorder);
        assert_eq!(p.cwnd(), w);
    }

    #[test]
    fn high_power_shrinks_low_power_grows() {
        let c = ctx();
        let bw = c.host_bw;
        let b = bw.bytes_per_sec();
        let dt = Tick::from_micros(2);
        let full = (b * dt.as_secs_f64()).round() as u64;

        // Congested: queue of 3 BDP, line-rate egress -> power 4.
        let mut p = PowerTcp::new(PowerTcpConfig::default(), ctx());
        let q = (3.0 * b * c.base_rtt.as_secs_f64()) as u64;
        let mut now = Tick::from_micros(100);
        let h = int_header(now, q, 0, bw);
        p.on_ack(&ack_info(now, 1000, &h));
        let w0 = p.cwnd();
        for i in 1..40u64 {
            now += dt;
            let h = int_header(now, q, i * full, bw);
            p.on_ack(&ack_info(now, 1000 + i * 1000, &h));
        }
        assert!(p.cwnd() < 0.6 * w0, "cwnd={} w0={}", p.cwnd(), w0);

        // Underutilized: empty queue, egress at 25% of line rate.
        let mut p = PowerTcp::new(PowerTcpConfig::default(), ctx());
        // Start from a deflated window so growth is observable.
        p.cwnd = 10_000.0;
        p.cwnd_old = 10_000.0;
        let mut now = Tick::from_micros(100);
        let h = int_header(now, 0, 0, bw);
        p.on_ack(&ack_info(now, 1000, &h));
        let w0 = p.cwnd();
        for i in 1..40u64 {
            now += dt;
            let h = int_header(now, 0, i * full / 4, bw);
            p.on_ack(&ack_info(now, 1000 + i * 1000, &h));
        }
        assert!(p.cwnd() > 1.5 * w0, "cwnd={} w0={}", p.cwnd(), w0);
    }

    #[test]
    fn per_rtt_mode_updates_once_per_window() {
        use crate::config::UpdateInterval;
        let cfg = PowerTcpConfig {
            update_interval: UpdateInterval::PerRtt,
            ..PowerTcpConfig::default()
        };
        let c = ctx();
        let bw = c.host_bw;
        let b = bw.bytes_per_sec();
        let dt = Tick::from_micros(2);
        let full = (b * dt.as_secs_f64()).round() as u64;
        let q = (3.0 * b * c.base_rtt.as_secs_f64()) as u64; // power 4
        let mut per_rtt = PowerTcp::new(cfg, ctx());
        let mut per_ack = PowerTcp::new(PowerTcpConfig::default(), ctx());
        let mut now = Tick::from_micros(100);
        // Same congested feedback stream, small seq steps (within one RTT
        // of data): per-RTT gates all but the first update.
        for i in 0..30u64 {
            now += dt;
            let h = int_header(now, q, i * full, bw);
            let a = ack_info(now, 1000 + i * 1000, &h);
            per_rtt.on_ack(&a);
            per_ack.on_ack(&a);
        }
        assert!(
            per_ack.cwnd() < per_rtt.cwnd(),
            "per-ACK mode reacts more within one RTT: per_ack={} per_rtt={}",
            per_ack.cwnd(),
            per_rtt.cwnd()
        );
    }

    #[test]
    fn window_stays_within_bounds_under_noise() {
        // Adversarial INT stream with jumps must never produce a
        // non-finite or out-of-range window.
        let c = ctx();
        let mut p = PowerTcp::new(PowerTcpConfig::default(), ctx());
        let bw = c.host_bw;
        let mut now = Tick::from_micros(100);
        let mut seq = 0u64;
        let mut tx = 0u64;
        for i in 0..200u64 {
            now += Tick::from_nanos(317 + (i * 7919) % 3000);
            seq += 1000;
            tx = tx.wrapping_add((i * 104_729) % 50_000);
            let q = (i * 48_611) % 2_000_000;
            let h = int_header(now, q, tx, bw);
            p.on_ack(&ack_info(now, seq, &h));
            assert!(p.cwnd().is_finite());
            assert!(p.cwnd() >= p.min_cwnd && p.cwnd() <= p.max_cwnd);
        }
    }
}
