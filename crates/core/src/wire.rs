//! On-wire encoding of the INT telemetry header.
//!
//! The paper's deployments carry telemetry inside packets: the Tofino
//! proof-of-concept "leverage[s] a custom TCP option type to encode this
//! data and append[s] 64-bit per-hop headers to a 32-bit base header"
//! (§3.6), and the RDCN experiments use TCP option number 36, where the
//! 40-byte TCP option budget "can only support at most four hops
//! round-trip path length" (§5).
//!
//! This module implements that format so the core crate is embeddable in a
//! real stack:
//!
//! ```text
//! base (4 B):  kind=36 (1 B) | length (1 B) | hop count (1 B) | flags (1 B)
//! per hop (8 B):
//!   qlen      (20 bits) — bytes >> 7 (128 B units, saturating)
//!   ts        (24 bits) — nanoseconds, wrapping modulo 2^24 (~16.7 ms)
//!   tx_bytes  (14 bits) — bytes >> 10 (1 KiB units, wrapping)
//!   bandwidth (6 bits)  — log2-scaled code (see [`encode_bandwidth`])
//! ```
//!
//! The quantization mirrors what line-rate hardware can afford: absolute
//! counters are wrapped/truncated and the *receiver* reconstructs deltas,
//! exactly as HPCC's INT does. Quantization error bounds are unit-tested;
//! the control-law impact is bounded by the same clamps that protect
//! against measurement noise ([`crate::power::MIN_NORM_POWER`]).

use crate::int::{IntHeader, IntHopMetadata, MAX_INT_HOPS};
use crate::time::Tick;
use crate::units::Bandwidth;

/// TCP option kind used by the paper's RDCN implementation.
pub const TCP_OPTION_KIND: u8 = 36;

/// Base header size in bytes.
pub const BASE_BYTES: usize = 4;

/// Per-hop record size in bytes.
pub const HOP_BYTES: usize = 8;

/// Maximum hops that fit a 40-byte TCP option: (40 − 4) / 8 = 4.
pub const MAX_TCP_OPTION_HOPS: usize = (40 - BASE_BYTES) / HOP_BYTES;

/// Quantization unit for queue lengths (2^7 bytes).
const QLEN_SHIFT: u32 = 7;
/// Queue-length field width.
const QLEN_BITS: u32 = 20;
/// Timestamp modulus (2^24 ns ≈ 16.7 ms — far beyond any datacenter RTT).
const TS_BITS: u32 = 24;
/// Quantization unit for the tx-byte counter (2^10 bytes).
const TX_SHIFT: u32 = 10;
/// Tx-counter field width.
const TX_BITS: u32 = 14;

/// Encode a bandwidth into the 6-bit code: `round(4·log2(Gbps))`,
/// covering 1 Gbps (code 0) to ~57 Tbps (code 63) with ≤ ~9% step error.
pub fn encode_bandwidth(bw: Bandwidth) -> u8 {
    let gbps = bw.as_gbps_f64().max(1.0);
    let code = (4.0 * gbps.log2()).round();
    code.clamp(0.0, 63.0) as u8
}

/// Decode a 6-bit bandwidth code back to bits/s.
pub fn decode_bandwidth(code: u8) -> Bandwidth {
    let gbps = 2f64.powf(code as f64 / 4.0);
    Bandwidth::from_bps((gbps * 1e9).round() as u64)
}

/// Errors from decoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Buffer shorter than the base header or the advertised length.
    Truncated,
    /// First byte is not [`TCP_OPTION_KIND`].
    WrongKind,
    /// Advertised length is not `4 + 8·hops` or exceeds the buffer.
    BadLength,
    /// Hop count exceeds [`MAX_INT_HOPS`].
    TooManyHops,
}

/// Encode up to `max_hops` entries of `int` into `out`, returning the
/// number of bytes written. `out` must hold `BASE_BYTES + HOP_BYTES ×
/// min(hops, max_hops)` bytes; excess hops beyond `max_hops` are dropped
/// from the *front* (keeping the most recent — downstream — hops, which
/// include the bottleneck for a congested path tail; hardware instead
/// stops appending, equivalent to dropping from the back — either policy
/// loses information only when the path exceeds the budget).
pub fn encode(int: &IntHeader, max_hops: usize, out: &mut [u8]) -> Result<usize, WireError> {
    let hops = int.hops();
    let n = hops.len().min(max_hops);
    let need = BASE_BYTES + HOP_BYTES * n;
    if out.len() < need {
        return Err(WireError::Truncated);
    }
    let skip = hops.len() - n;
    out[0] = TCP_OPTION_KIND;
    out[1] = need as u8;
    out[2] = n as u8;
    out[3] = 0; // flags (reserved)
    for (i, hop) in hops[skip..].iter().enumerate() {
        let qlen_q = (hop.qlen_bytes >> QLEN_SHIFT).min((1 << QLEN_BITS) - 1);
        let ts_ns = hop.ts.as_ps() / 1_000;
        let ts_q = ts_ns & ((1 << TS_BITS) - 1);
        let tx_q = (hop.tx_bytes >> TX_SHIFT) & ((1 << TX_BITS) - 1);
        let bw_q = encode_bandwidth(hop.bandwidth) as u64;
        // Pack: qlen(20) | ts(24) | tx(14) | bw(6) = 64 bits.
        let word = (qlen_q << 44) | (ts_q << 20) | (tx_q << 6) | bw_q;
        out[BASE_BYTES + i * HOP_BYTES..BASE_BYTES + (i + 1) * HOP_BYTES]
            .copy_from_slice(&word.to_be_bytes());
    }
    Ok(need)
}

/// A decoded hop in wire units; absolute counters are quantized/wrapped,
/// so consumers reconstruct rates from *deltas* (as the power estimator
/// does).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireHop {
    /// Queue length in bytes (quantized to 128 B).
    pub qlen_bytes: u64,
    /// Timestamp in nanoseconds, modulo 2^24.
    pub ts_ns_wrapped: u64,
    /// Transmitted bytes, quantized to 1 KiB and wrapped modulo 2^24.
    pub tx_bytes_wrapped: u64,
    /// Link bandwidth (log-quantized).
    pub bandwidth: Bandwidth,
}

/// Decode a wire header.
pub fn decode(buf: &[u8]) -> Result<Vec<WireHop>, WireError> {
    if buf.len() < BASE_BYTES {
        return Err(WireError::Truncated);
    }
    if buf[0] != TCP_OPTION_KIND {
        return Err(WireError::WrongKind);
    }
    let len = buf[1] as usize;
    let n = buf[2] as usize;
    if n > MAX_INT_HOPS {
        return Err(WireError::TooManyHops);
    }
    if len != BASE_BYTES + HOP_BYTES * n || buf.len() < len {
        return Err(WireError::BadLength);
    }
    let mut hops = Vec::with_capacity(n);
    for i in 0..n {
        let mut word = [0u8; 8];
        word.copy_from_slice(&buf[BASE_BYTES + i * HOP_BYTES..BASE_BYTES + (i + 1) * HOP_BYTES]);
        let word = u64::from_be_bytes(word);
        let qlen_q = word >> 44;
        let ts_q = (word >> 20) & ((1 << TS_BITS) - 1);
        let tx_q = (word >> 6) & ((1 << TX_BITS) - 1);
        let bw_q = (word & 0x3F) as u8;
        hops.push(WireHop {
            qlen_bytes: qlen_q << QLEN_SHIFT,
            ts_ns_wrapped: ts_q,
            tx_bytes_wrapped: tx_q << TX_SHIFT,
            bandwidth: decode_bandwidth(bw_q),
        });
    }
    Ok(hops)
}

/// Reconstruct an [`IntHeader`] from decoded wire hops given an unwrapping
/// reference: the receiver tracks, per hop, the last unwrapped timestamp
/// and tx counter (exactly what `prevInt` already stores) and extends the
/// wrapped fields monotonically.
pub fn unwrap_hops(wire: &[WireHop], prev: Option<&IntHeader>) -> IntHeader {
    let mut out = IntHeader::new();
    for (i, w) in wire.iter().enumerate() {
        let (prev_ts_ps, prev_tx) = prev
            .and_then(|p| p.hops().get(i))
            .map(|h| (h.ts.as_ps(), h.tx_bytes))
            .unwrap_or((0, 0));
        // Timestamps: find the smallest unwrapped value >= prev with the
        // observed residue modulo 2^24 ns.
        let ts_mod_ps = w.ts_ns_wrapped * 1_000;
        let period_ps = (1u64 << TS_BITS) * 1_000;
        let base = prev_ts_ps - (prev_ts_ps % period_ps);
        let mut ts_ps = base + ts_mod_ps;
        if ts_ps < prev_ts_ps {
            ts_ps += period_ps;
        }
        // Tx counter: same treatment modulo 2^24 bytes.
        let tx_period = 1u64 << (TX_BITS + TX_SHIFT);
        let tx_base = prev_tx - (prev_tx % tx_period);
        let mut tx = tx_base + w.tx_bytes_wrapped;
        if tx < prev_tx {
            tx += tx_period;
        }
        out.push(IntHopMetadata {
            node: i as u32,
            port: 0,
            qlen_bytes: w.qlen_bytes,
            ts: Tick::from_ps(ts_ps),
            tx_bytes: tx,
            bandwidth: w.bandwidth,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(qlen: u64, ts_us: u64, tx: u64, gbps: u64) -> IntHopMetadata {
        IntHopMetadata {
            node: 1,
            port: 2,
            qlen_bytes: qlen,
            ts: Tick::from_micros(ts_us),
            tx_bytes: tx,
            bandwidth: Bandwidth::gbps(gbps),
        }
    }

    fn header(hops: &[IntHopMetadata]) -> IntHeader {
        let mut h = IntHeader::new();
        for &m in hops {
            h.push(m);
        }
        h
    }

    #[test]
    fn bandwidth_codes_cover_datacenter_range() {
        for g in [1u64, 10, 25, 40, 50, 100, 200, 400, 800] {
            let code = encode_bandwidth(Bandwidth::gbps(g));
            let back = decode_bandwidth(code).as_gbps_f64();
            let err = (back - g as f64).abs() / g as f64;
            assert!(err < 0.10, "{g} Gbps -> code {code} -> {back} ({err:.3})");
        }
    }

    #[test]
    fn roundtrip_within_quantization() {
        let h = header(&[hop(123_456, 100, 9_999_999, 100), hop(0, 101, 5_000, 25)]);
        let mut buf = [0u8; 64];
        let n = encode(&h, MAX_INT_HOPS, &mut buf).unwrap();
        assert_eq!(n, BASE_BYTES + 2 * HOP_BYTES);
        let wire = decode(&buf[..n]).unwrap();
        assert_eq!(wire.len(), 2);
        // Queue quantized to 128 B.
        assert!(wire[0].qlen_bytes <= 123_456);
        assert!(123_456 - wire[0].qlen_bytes < 128);
        assert_eq!(wire[1].qlen_bytes, 0);
        // Timestamp modulo arithmetic: 100 us = 100_000 ns < 2^24.
        assert_eq!(wire[0].ts_ns_wrapped, 100_000);
        // Tx quantized to 1 KiB.
        assert!(9_999_999 - wire[0].tx_bytes_wrapped < 1_024 * 2);
    }

    #[test]
    fn tcp_option_budget_keeps_most_recent_hops() {
        let h = header(&[
            hop(1 << 10, 1, 0, 100),
            hop(2 << 10, 2, 0, 100),
            hop(3 << 10, 3, 0, 100),
            hop(4 << 10, 4, 0, 100),
            hop(5 << 10, 5, 0, 100),
        ]);
        let mut buf = [0u8; 40];
        let n = encode(&h, MAX_TCP_OPTION_HOPS, &mut buf).unwrap();
        assert_eq!(n, 36, "4 hops + base fit the 40 B option budget");
        let wire = decode(&buf[..n]).unwrap();
        assert_eq!(wire.len(), 4);
        // Front hop dropped; hops 2..=5 kept.
        assert_eq!(wire[0].qlen_bytes, 2 << 10);
        assert_eq!(wire[3].qlen_bytes, 5 << 10);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert_eq!(decode(&[]), Err(WireError::Truncated));
        assert_eq!(decode(&[35, 4, 0, 0]), Err(WireError::WrongKind));
        assert_eq!(decode(&[36, 5, 0, 0, 0]), Err(WireError::BadLength));
        assert_eq!(decode(&[36, 12, 200, 0]), Err(WireError::TooManyHops));
        // Advertised longer than buffer.
        assert_eq!(decode(&[36, 12, 1, 0]), Err(WireError::BadLength));
    }

    #[test]
    fn unwrap_recovers_monotone_counters_across_wrap() {
        // Two snapshots straddling a timestamp wrap (2^24 ns ≈ 16.78 ms)
        // and a tx wrap (2^24 B).
        let t1 = Tick::from_nanos(16_700_000); // just below the wrap
        let t2 = Tick::from_nanos(16_900_000); // past it
        let h1 = header(&[hop(0, 0, 16_000_000, 100)]);
        let mut h1m = IntHeader::new();
        h1m.push(IntHopMetadata {
            ts: t1,
            ..h1.hops()[0]
        });
        let h2 = header(&[hop(0, 0, 17_000_000, 100)]);
        let mut h2m = IntHeader::new();
        h2m.push(IntHopMetadata {
            ts: t2,
            ..h2.hops()[0]
        });

        let mut buf = [0u8; 16];
        let n1 = encode(&h1m, 8, &mut buf).unwrap();
        let w1 = decode(&buf[..n1]).unwrap();
        let u1 = unwrap_hops(&w1, None);

        let n2 = encode(&h2m, 8, &mut buf).unwrap();
        let w2 = decode(&buf[..n2]).unwrap();
        let u2 = unwrap_hops(&w2, Some(&u1));

        assert!(
            u2.hops()[0].ts > u1.hops()[0].ts,
            "time must unwrap forward"
        );
        let dt = u2.hops()[0].ts - u1.hops()[0].ts;
        assert!(
            (dt.as_ps() as i64 - 200_000_000).abs() < 2_000_000,
            "unwrapped delta ~200us, got {dt}"
        );
        assert!(u2.hops()[0].tx_bytes > u1.hops()[0].tx_bytes);
        let dtx = u2.hops()[0].tx_bytes - u1.hops()[0].tx_bytes;
        assert!(
            (dtx as i64 - 1_000_000).abs() < 2 * 1024,
            "unwrapped tx delta ~1MB, got {dtx}"
        );
    }

    #[test]
    fn quantized_feedback_still_drives_the_estimator() {
        // End-to-end: wire-roundtripped INT feeds the power estimator and
        // yields the same qualitative signal as exact INT.
        use crate::power::PowerEstimator;
        let tau = Tick::from_micros(20);
        let bw = Bandwidth::gbps(100);
        let bps = bw.bytes_per_sec();
        let dt = Tick::from_micros(2);
        let tx_per_dt = (bps * dt.as_secs_f64()) as u64;
        let q = (bps * tau.as_secs_f64()) as u64; // 1 BDP queued -> power 2

        let mut exact = PowerEstimator::new(tau);
        let mut wired = PowerEstimator::new(tau);
        let mut prev_unwrapped: Option<IntHeader> = None;
        let mut ts = Tick::from_micros(10);
        let mut tx = 0u64;
        let mut last_exact = None;
        let mut last_wired = None;
        for _ in 0..40 {
            ts += dt;
            tx += tx_per_dt;
            let h = header(&[IntHopMetadata {
                node: 1,
                port: 0,
                qlen_bytes: q,
                ts,
                tx_bytes: tx,
                bandwidth: bw,
            }]);
            last_exact = exact.update(&h).or(last_exact);
            let mut buf = [0u8; 16];
            let n = encode(&h, 8, &mut buf).unwrap();
            let wire = decode(&buf[..n]).unwrap();
            let u = unwrap_hops(&wire, prev_unwrapped.as_ref());
            last_wired = wired.update(&u).or(last_wired);
            prev_unwrapped = Some(u);
        }
        let e = last_exact.unwrap().smoothed;
        let w = last_wired.unwrap().smoothed;
        assert!(
            (e - w).abs() / e < 0.15,
            "quantization must not distort power materially: exact {e:.3} vs wire {w:.3}"
        );
    }
}
