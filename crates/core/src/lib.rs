//! # powertcp-core
//!
//! From-scratch Rust implementation of **PowerTCP** (Addanki, Michel,
//! Schmid — *PowerTCP: Pushing the Performance Limits of Datacenter
//! Networks*, NSDI 2022): a power-based congestion control law for
//! datacenter networks.
//!
//! ## The idea
//!
//! Classic datacenter CC reacts to either the network's absolute state
//! ("voltage": queue length, delay — DCTCP, HPCC, Swift) or to its rate of
//! change ("current": RTT gradient — TIMELY). Each misses half the picture
//! (paper §2). PowerTCP reacts to their product, **power**:
//!
//! ```text
//! Γ(t) = (q(t) + b·τ) · (q̇(t) + µ(t))  =  voltage · current
//! ```
//!
//! Property 1 of the paper shows `Γ(t) = b · w(t − t_f)` — power reveals
//! the *aggregate* window of all flows sharing the bottleneck, enabling the
//! window update (Eq. 7)
//!
//! ```text
//! w ← γ·( w_old · e / f(t) + β ) + (1−γ)·w ,   e = b²τ,  f(t) = Γ
//! ```
//!
//! to steer directly to the unique equilibrium `w_e = b·τ + β̂`,
//! `q_e = β̂` (Theorems 1–3: Lyapunov + asymptotic stability, exponential
//! convergence with time constant `δt/γ`, β-weighted proportional
//! fairness).
//!
//! ## What lives here
//!
//! * [`PowerTcp`] — the INT-based algorithm (Algorithm 1),
//! * [`ThetaPowerTcp`] — the delay-based standalone variant (Algorithm 2),
//! * [`PowerEstimator`] — power computation from consecutive INT snapshots,
//! * [`IntHeader`]/[`IntHopMetadata`] — HPCC-compatible telemetry types,
//! * [`CongestionControl`] — the trait every algorithm (including the
//!   baselines in `cc-baselines`) implements,
//! * [`Tick`]/[`Bandwidth`] — exact integer time (picoseconds) and
//!   bandwidth units shared across the workspace.
//!
//! This crate has **no dependencies**: it is the piece a real transport
//! stack (kernel module, NIC firmware, kernel-bypass stack) would embed.
//!
//! ## Quick example
//!
//! ```
//! use powertcp_core::{
//!     AckInfo, Bandwidth, CcContext, CongestionControl, IntHeader,
//!     IntHopMetadata, PowerTcp, PowerTcpConfig, Tick,
//! };
//!
//! let ctx = CcContext {
//!     base_rtt: Tick::from_micros(20),
//!     host_bw: Bandwidth::gbps(25),
//!     mtu: 1000,
//!     expected_flows: 4,
//! };
//! let mut cc = PowerTcp::new(PowerTcpConfig::default(), ctx);
//! assert_eq!(cc.cwnd() as u64, 62_500); // HostBw × τ
//!
//! // Feed an ACK carrying an INT snapshot of the bottleneck egress port.
//! let mut int = IntHeader::new();
//! int.push(IntHopMetadata {
//!     node: 7, port: 1,
//!     qlen_bytes: 0,
//!     ts: Tick::from_micros(100),
//!     tx_bytes: 0,
//!     bandwidth: Bandwidth::gbps(100),
//! });
//! cc.on_ack(&AckInfo {
//!     now: Tick::from_micros(120),
//!     ack_seq: 1000, newly_acked: 1000, snd_nxt: 62_500,
//!     rtt: Tick::from_micros(20),
//!     int: Some(&int), ecn_marked: false,
//! });
//! // First snapshot only bootstraps the estimator; window unchanged.
//! assert_eq!(cc.cwnd() as u64, 62_500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod config;
pub mod int;
pub mod power;
pub mod powertcp;
pub mod theta;
pub mod time;
pub mod units;
pub mod wire;

pub use cc::{
    clamp_cwnd, rate_from_cwnd, AckInfo, CcContext, CongestionControl, LossKind, NetSignal,
};
pub use config::{PowerTcpConfig, UpdateInterval};
pub use int::{IntHeader, IntHopMetadata, MAX_INT_HOPS};
pub use power::{
    norm_power_closed_form, PowerEstimator, PowerSample, MAX_NORM_POWER, MIN_NORM_POWER,
};
pub use powertcp::PowerTcp;
pub use theta::ThetaPowerTcp;
pub use time::Tick;
pub use units::Bandwidth;
pub use wire::{
    decode as wire_decode, encode as wire_encode, unwrap_hops, WireError, WireHop,
    MAX_TCP_OPTION_HOPS, TCP_OPTION_KIND,
};
