//! θ-PowerTCP (Algorithm 2): the standalone, switch-support-free variant.
//!
//! With legacy switches the sender cannot observe per-hop queue lengths, so
//! the power term is re-derived from end-to-end delay (Eq. 8):
//!
//! ```text
//! e/f  =  τ / ( (θ̇ + 1) · θ )
//! ```
//!
//! where `θ` is the measured RTT and `θ̇` the RTT gradient, under the
//! assumption that the bottleneck transmits at full bandwidth (`µ = b`).
//! The paper notes two consequences, both reproduced by our evaluation:
//! θ-PowerTCP cannot detect *under*-utilization (RTT stays at τ whether the
//! link is 10% or 100% busy), so it falls back to slow additive increase
//! for ramp-up, and in multi-bottleneck settings it reacts to the *sum* of
//! queueing delays instead of the single most-bottlenecked hop. It updates
//! once per RTT rather than per ACK.

use crate::cc::{clamp_cwnd, rate_from_cwnd, AckInfo, CcContext, CongestionControl, LossKind};
use crate::config::PowerTcpConfig;
use crate::power::{MAX_NORM_POWER, MIN_NORM_POWER};
use crate::time::Tick;
use crate::units::Bandwidth;

/// Back-off on timeout, mirroring [`crate::powertcp::PowerTcp`].
const TIMEOUT_BACKOFF: f64 = 0.5;

/// The delay-based θ-PowerTCP sender.
#[derive(Clone, Debug)]
pub struct ThetaPowerTcp {
    cfg: PowerTcpConfig,
    ctx: CcContext,
    cwnd: f64,
    cwnd_old: f64,
    /// Sequence gate for once-per-RTT window updates (`lastUpdated`).
    last_updated_seq: u64,
    /// Sequence gate for the `w_old` snapshot.
    update_seq: u64,
    prev_rtt: Option<Tick>,
    /// Receive time of the previous ACK (`t_c^prev`).
    prev_ack_time: Option<Tick>,
    smoothed_power: f64,
    min_cwnd: f64,
    max_cwnd: f64,
}

impl ThetaPowerTcp {
    /// Create a θ-PowerTCP instance for one flow.
    pub fn new(cfg: PowerTcpConfig, ctx: CcContext) -> Self {
        let init = ctx.host_bdp_bytes();
        ThetaPowerTcp {
            cfg,
            ctx,
            cwnd: init,
            cwnd_old: init,
            last_updated_seq: 0,
            update_seq: 0,
            prev_rtt: None,
            prev_ack_time: None,
            smoothed_power: 1.0,
            min_cwnd: cfg.min_cwnd_bytes,
            max_cwnd: init * cfg.max_cwnd_factor,
        }
    }

    /// Additive increase β in bytes.
    pub fn beta(&self) -> f64 {
        self.cfg
            .beta_override_bytes
            .unwrap_or_else(|| self.ctx.beta_bytes())
    }

    /// NORMPOWER of Algorithm 2: `Γ_norm = (θ̇ + 1) · θ / τ`, smoothed over
    /// one base RTT.
    fn measure_power(&mut self, now: Tick, rtt: Tick) -> Option<f64> {
        let tau = self.ctx.base_rtt.as_secs_f64();
        let (prev_rtt, prev_t) = match (self.prev_rtt, self.prev_ack_time) {
            (Some(r), Some(t)) => (r, t),
            _ => {
                self.prev_rtt = Some(rtt);
                self.prev_ack_time = Some(now);
                return None;
            }
        };
        let dt_tick = now.saturating_sub(prev_t);
        self.prev_rtt = Some(rtt);
        self.prev_ack_time = Some(now);
        if dt_tick.is_zero() {
            return None;
        }
        let dt = dt_tick.as_secs_f64();
        // θ̇ = (RTT − prevRTT) / dt — dimensionless gradient.
        let theta_dot = (rtt.as_secs_f64() - prev_rtt.as_secs_f64()) / dt;
        let raw =
            ((theta_dot + 1.0) * rtt.as_secs_f64() / tau).clamp(MIN_NORM_POWER, MAX_NORM_POWER);
        let dt_s = dt.min(tau);
        self.smoothed_power = (self.smoothed_power * (tau - dt_s) + raw * dt_s) / tau;
        Some(self.smoothed_power)
    }
}

impl CongestionControl for ThetaPowerTcp {
    fn on_ack(&mut self, ack: &AckInfo<'_>) {
        // Power measurement runs on every ACK (keeps the gradient fresh)...
        let Some(power) = self.measure_power(ack.now, ack.rtt) else {
            return;
        };
        // ...but the window moves only once per RTT (Algorithm 2 l.16-18).
        if ack.ack_seq < self.last_updated_seq {
            return;
        }
        let gamma = self.cfg.gamma;
        let new = gamma * (self.cwnd_old / power + self.beta()) + (1.0 - gamma) * self.cwnd;
        self.cwnd = clamp_cwnd(new, self.min_cwnd, self.max_cwnd);
        self.last_updated_seq = ack.snd_nxt;
        if ack.ack_seq >= self.update_seq {
            self.cwnd_old = self.cwnd;
            self.update_seq = ack.snd_nxt;
        }
    }

    fn on_loss(&mut self, _now: Tick, kind: LossKind) {
        if kind == LossKind::Timeout {
            self.cwnd = clamp_cwnd(self.cwnd * TIMEOUT_BACKOFF, self.min_cwnd, self.max_cwnd);
            self.cwnd_old = self.cwnd;
        }
    }

    fn cwnd(&self) -> f64 {
        self.cwnd
    }

    fn pacing_rate(&self) -> Bandwidth {
        rate_from_cwnd(self.cwnd, self.ctx.base_rtt, self.ctx.host_bw)
    }

    fn norm_power(&self) -> Option<f64> {
        Some(self.smoothed_power)
    }

    fn name(&self) -> &'static str {
        "theta-powertcp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CcContext {
        CcContext {
            base_rtt: Tick::from_micros(20),
            host_bw: Bandwidth::gbps(25),
            mtu: 1000,
            expected_flows: 10,
        }
    }

    fn ack(now: Tick, seq: u64, rtt: Tick) -> AckInfo<'static> {
        AckInfo {
            now,
            ack_seq: seq,
            newly_acked: 1000,
            snd_nxt: seq + 60_000,
            rtt,
            int: None,
            ecn_marked: false,
        }
    }

    #[test]
    fn needs_two_acks_to_act() {
        let mut p = ThetaPowerTcp::new(PowerTcpConfig::default(), ctx());
        let w0 = p.cwnd();
        p.on_ack(&ack(Tick::from_micros(100), 1000, Tick::from_micros(20)));
        assert_eq!(p.cwnd(), w0);
    }

    #[test]
    fn rtt_at_base_with_positive_beta_grows_additively() {
        // RTT pinned at τ: power = 1, so each per-RTT update adds ≈ γ·β.
        let mut p = ThetaPowerTcp::new(PowerTcpConfig::default(), ctx());
        p.cwnd = 10_000.0;
        p.cwnd_old = 10_000.0;
        let mut now = Tick::from_micros(100);
        let mut seq = 100_000u64; // past last_updated gate
        let w0 = p.cwnd();
        for _ in 0..12 {
            now += Tick::from_micros(20);
            seq += 60_000;
            p.on_ack(&ack(now, seq, Tick::from_micros(20)));
        }
        // Growth must be slow/additive: strictly increasing but far from
        // multiplicative ramp.
        assert!(p.cwnd() > w0);
        assert!(p.cwnd() < w0 + 12.0 * p.beta() + 1.0);
    }

    #[test]
    fn inflated_rtt_shrinks_window() {
        let mut p = ThetaPowerTcp::new(PowerTcpConfig::default(), ctx());
        let mut now = Tick::from_micros(100);
        let mut seq = 100_000u64;
        let w0 = p.cwnd();
        // RTT = 3τ (two BDPs of queueing) sustained.
        for _ in 0..20 {
            now += Tick::from_micros(20);
            seq += 60_000;
            p.on_ack(&ack(now, seq, Tick::from_micros(60)));
        }
        assert!(p.cwnd() < 0.6 * w0, "cwnd={} w0={}", p.cwnd(), w0);
    }

    #[test]
    fn once_per_rtt_gate_holds() {
        let mut p = ThetaPowerTcp::new(PowerTcpConfig::default(), ctx());
        let now0 = Tick::from_micros(100);
        p.on_ack(&ack(now0, 1000, Tick::from_micros(40)));
        // Second ack triggers an update and sets the gate to snd_nxt.
        p.on_ack(&ack(
            now0 + Tick::from_micros(2),
            2000,
            Tick::from_micros(40),
        ));
        let w_after_update = p.cwnd();
        // Acks below the gate (seq < snd_nxt of the update) must not move
        // the window again within the same RTT.
        for i in 3..20u64 {
            p.on_ack(&ack(
                now0 + Tick::from_micros(i),
                i * 1000,
                Tick::from_micros(40),
            ));
        }
        assert_eq!(p.cwnd(), w_after_update);
    }

    #[test]
    fn gradient_spike_reacts_before_queue_is_large() {
        // Rapidly rising RTT with small absolute queueing: the gradient
        // term must already push power above 1.
        let mut p = ThetaPowerTcp::new(PowerTcpConfig::default(), ctx());
        let mut now = Tick::from_micros(100);
        p.on_ack(&ack(now, 1000, Tick::from_micros(20)));
        // +2us RTT per 2us of time: θ̇ = 1, power ≈ (1+1)·θ/τ ≈ 2.
        let mut rtt = Tick::from_micros(20);
        let mut seq = 100_000u64;
        let w0 = p.cwnd();
        for _ in 0..10 {
            now += Tick::from_micros(2);
            rtt += Tick::from_micros(2);
            seq += 60_000;
            p.on_ack(&ack(now, seq, rtt));
        }
        assert!(p.cwnd() < w0, "must shrink on rising gradient");
    }

    #[test]
    fn window_bounded_under_noise() {
        let mut p = ThetaPowerTcp::new(PowerTcpConfig::default(), ctx());
        let mut now = Tick::from_micros(100);
        for i in 0..300u64 {
            now += Tick::from_nanos(137 + (i * 7919) % 5000);
            let rtt = Tick::from_nanos(20_000 + (i * 104_729) % 80_000);
            p.on_ack(&ack(now, i * 1000, rtt));
            assert!(p.cwnd().is_finite());
            assert!(p.cwnd() >= p.min_cwnd && p.cwnd() <= p.max_cwnd);
        }
    }
}
