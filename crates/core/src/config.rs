//! Tunable parameters for PowerTCP and θ-PowerTCP.

/// When the window update runs.
///
/// PowerTCP natively updates on every ACK (Algorithm 1). For the RDCN case
/// study the paper "limit[s] window updates to once per RTT for a fair
/// comparison with reTCP" (§5); θ-PowerTCP always updates once per RTT.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum UpdateInterval {
    /// Update on every acknowledgment (Algorithm 1).
    #[default]
    PerAck,
    /// Gate updates to once per round-trip of acknowledged data.
    PerRtt,
}

/// Parameters of the PowerTCP control law (§3.3, "Parameters").
///
/// The paper recommends `γ = 0.9` from a parameter sweep, and derives
/// `β = HostBw·τ/N` from the expected flow count per host; `β` can be
/// overridden for experiments (e.g. weighted fairness, Theorem 3).
#[derive(Clone, Copy, Debug)]
pub struct PowerTcpConfig {
    /// EWMA gain γ ∈ (0,1]: balance between reaction time and noise
    /// sensitivity. Paper recommendation: 0.9.
    pub gamma: f64,
    /// Override for the additive-increase term β (bytes). `None` uses the
    /// paper's rule `HostBw·τ/N` from the flow context.
    pub beta_override_bytes: Option<f64>,
    /// Lower window clamp in bytes (windows below one MTU remain valid —
    /// pacing stretches packets out — but zero would deadlock).
    pub min_cwnd_bytes: f64,
    /// Upper window clamp as a multiple of the host BDP. A single flow
    /// gains nothing from windows beyond line rate (HPCC applies the same
    /// `W ≤ W_init` cap).
    pub max_cwnd_factor: f64,
    /// Per-ACK (native) or per-RTT (RDCN fair-comparison) updates.
    pub update_interval: UpdateInterval,
}

impl Default for PowerTcpConfig {
    fn default() -> Self {
        PowerTcpConfig {
            gamma: 0.9,
            beta_override_bytes: None,
            min_cwnd_bytes: 256.0,
            max_cwnd_factor: 1.0,
            update_interval: UpdateInterval::PerAck,
        }
    }
}

impl PowerTcpConfig {
    /// Validate invariants; called by constructors in debug builds and by
    /// the simulator harness before long runs.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.gamma > 0.0 && self.gamma <= 1.0) {
            return Err(format!("gamma must be in (0,1], got {}", self.gamma));
        }
        if self.min_cwnd_bytes <= 0.0 {
            return Err("min_cwnd_bytes must be positive".into());
        }
        if self.max_cwnd_factor < 1.0 {
            return Err("max_cwnd_factor must be >= 1".into());
        }
        if let Some(b) = self.beta_override_bytes {
            if !(b.is_finite() && b >= 0.0) {
                return Err(format!("beta override must be >= 0, got {b}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(PowerTcpConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_bad_gamma() {
        let mut c = PowerTcpConfig {
            gamma: 0.0,
            ..PowerTcpConfig::default()
        };
        assert!(c.validate().is_err());
        c.gamma = 1.5;
        assert!(c.validate().is_err());
        c.gamma = 1.0;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn rejects_bad_beta() {
        let mut c = PowerTcpConfig {
            beta_override_bytes: Some(-1.0),
            ..PowerTcpConfig::default()
        };
        assert!(c.validate().is_err());
        c.beta_override_bytes = Some(f64::NAN);
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_bad_clamps() {
        let c = PowerTcpConfig {
            min_cwnd_bytes: 0.0,
            ..PowerTcpConfig::default()
        };
        assert!(c.validate().is_err());
        let c = PowerTcpConfig {
            max_cwnd_factor: 0.5,
            ..PowerTcpConfig::default()
        };
        assert!(c.validate().is_err());
    }
}
