//! Network *power* computation (§3.1, Algorithm 1 lines 8–25).
//!
//! Power is the product of network *current* (aggregate arrival rate at the
//! bottleneck, `λ = q̇ + µ`) and network *voltage* (BDP plus buffered bytes,
//! `ν = q + b·τ`):
//!
//! ```text
//! Γ(t) = (q(t) + b·τ) · (q̇(t) + µ(t))        [Eq. 6]
//! ```
//!
//! Property 1 of the paper shows `Γ(t) = b · w(t − t_f)` — power equals the
//! bandwidth-window product of the *aggregate* window of all flows sharing
//! the bottleneck, which is what lets a PowerTCP sender steer its share of
//! the aggregate precisely.
//!
//! The sender reconstructs `q̇` and `µ` per hop from two consecutive INT
//! snapshots of that hop, normalizes by the hop's base power `e = b²·τ`,
//! takes the most-congested hop (max normalized power), and smooths the
//! result over one base RTT.

use crate::int::{IntHeader, IntHopMetadata, MAX_INT_HOPS};
use crate::time::Tick;

/// Lower clamp for normalized power.
///
/// When a queue drains at full line rate with no arrivals, the measured
/// current `λ = q̇ + µ` is zero, so raw normalized power is zero and the
/// window update `w_old / Γ_norm` would diverge. Real deployments bound the
/// multiplicative increase per update; a floor of 1/16 bounds it at 16× per
/// control interval while leaving the fast-ramp behaviour (the whole point
/// of power-based CC) intact.
pub const MIN_NORM_POWER: f64 = 1.0 / 16.0;

/// Upper clamp for normalized power (bounds multiplicative decrease per
/// update to 64×; only reachable under pathological measurement noise).
pub const MAX_NORM_POWER: f64 = 64.0;

/// Result of one power computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerSample {
    /// Smoothed normalized power `Γ_smooth` — the divisor in the window
    /// update (Eq. 7's `f(t)/e`).
    pub smoothed: f64,
    /// Raw (unsmoothed) max-hop normalized power, for diagnostics and
    /// ablations.
    pub raw: f64,
    /// Index of the hop that determined the max (the bottleneck).
    pub bottleneck_hop: usize,
}

/// Incremental power estimator: remembers the previous INT snapshot
/// (`prevInt` in Algorithm 1) and the smoothed normalized power.
#[derive(Clone, Debug)]
pub struct PowerEstimator {
    base_rtt: Tick,
    prev: [IntHopMetadata; MAX_INT_HOPS],
    prev_len: usize,
    smoothed: f64,
    initialized: bool,
}

impl PowerEstimator {
    /// Create an estimator for a flow with base RTT `τ`.
    pub fn new(base_rtt: Tick) -> Self {
        assert!(!base_rtt.is_zero(), "base RTT must be positive");
        PowerEstimator {
            base_rtt,
            prev: [IntHopMetadata::default(); MAX_INT_HOPS],
            prev_len: 0,
            smoothed: 1.0,
            initialized: false,
        }
    }

    /// Current smoothed normalized power.
    pub fn smoothed(&self) -> f64 {
        self.smoothed
    }

    /// True once at least one INT snapshot has been recorded (updates
    /// before that return `None`: there is no gradient to compute yet).
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Process the INT stack echoed on one ACK; Algorithm 1, NORMPOWER.
    ///
    /// Returns `None` on the first observation (no previous snapshot) and
    /// whenever no hop yields a usable measurement (e.g. zero elapsed time
    /// on every hop); the caller should then skip the window update, which
    /// is what the paper's `prevInt` bootstrap does implicitly.
    pub fn update(&mut self, int: &IntHeader) -> Option<PowerSample> {
        let hops = int.hops();
        if hops.is_empty() {
            return None;
        }
        if !self.initialized || self.prev_len != hops.len() {
            // First snapshot, or the path changed (ECMP reroute): store and
            // wait for the next ACK on the new path.
            self.store_prev(hops);
            self.initialized = true;
            return None;
        }

        let tau = self.base_rtt.as_secs_f64();
        let mut best: Option<(f64, usize, Tick)> = None;
        for (i, (cur, prev)) in hops.iter().zip(self.prev.iter()).enumerate() {
            let dt_tick = cur.ts.saturating_sub(prev.ts);
            if dt_tick.is_zero() {
                // Duplicate or reordered telemetry for this hop; skip it.
                continue;
            }
            let dt = dt_tick.as_secs_f64();
            // q̇ = Δqlen / Δt  (can be negative: queue draining)
            let q_dot = (cur.qlen_bytes as f64 - prev.qlen_bytes as f64) / dt;
            // µ = ΔtxBytes / Δt  (egress transmission rate)
            let mu = cur.tx_bytes.wrapping_sub(prev.tx_bytes) as f64 / dt;
            // λ = q̇ + µ  (current: arrival rate at the hop)
            let lambda = q_dot + mu;
            let b = cur.bandwidth.bytes_per_sec();
            if b <= 0.0 {
                continue;
            }
            // ν = qlen + BDP  (voltage)
            let voltage = cur.qlen_bytes as f64 + b * tau;
            // Γ' = λ · ν, normalized by base power e = b²·τ.
            let norm = (lambda * voltage) / (b * b * tau);
            let replace = match best {
                None => true,
                Some((cur_best, _, _)) => norm > cur_best,
            };
            if replace {
                best = Some((norm, i, dt_tick));
            }
        }

        self.store_prev(hops);
        let (raw, hop, dt_tick) = best?;
        let raw = raw.clamp(MIN_NORM_POWER, MAX_NORM_POWER);

        // Γ_smooth = (Γ_smooth·(τ−Δt) + Γ_norm·Δt) / τ   (Algorithm 1 l.24)
        // Δt is clamped to τ: with per-ACK feedback Δt ≪ τ, but after an
        // idle period a single sample should fully replace the stale state.
        let dt_s = dt_tick.as_secs_f64().min(tau);
        self.smoothed = (self.smoothed * (tau - dt_s) + raw * dt_s) / tau;
        Some(PowerSample {
            smoothed: self.smoothed,
            raw,
            bottleneck_hop: hop,
        })
    }

    fn store_prev(&mut self, hops: &[IntHopMetadata]) {
        self.prev[..hops.len()].copy_from_slice(hops);
        self.prev_len = hops.len();
    }
}

/// Compute raw normalized power from explicit quantities — the analytical
/// form used by the fluid model and the response-curve figures, exposed so
/// tests can cross-validate the INT path against the closed form.
///
/// `q` bytes, `q_dot` bytes/s, `mu` bytes/s, `b` bytes/s, `tau` seconds.
pub fn norm_power_closed_form(q: f64, q_dot: f64, mu: f64, b: f64, tau: f64) -> f64 {
    let lambda = q_dot + mu;
    let voltage = q + b * tau;
    (lambda * voltage) / (b * b * tau)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Bandwidth;

    const B: Bandwidth = Bandwidth::gbps(100);
    const TAU: Tick = Tick::from_micros(20);

    fn hop(ts: Tick, qlen: u64, tx_bytes: u64) -> IntHopMetadata {
        IntHopMetadata {
            node: 1,
            port: 0,
            qlen_bytes: qlen,
            ts,
            tx_bytes,
            bandwidth: B,
        }
    }

    fn header(hops: &[IntHopMetadata]) -> IntHeader {
        let mut h = IntHeader::new();
        for &m in hops {
            h.push(m);
        }
        h
    }

    #[test]
    fn first_observation_yields_none() {
        let mut est = PowerEstimator::new(TAU);
        let h = header(&[hop(Tick::from_micros(1), 0, 0)]);
        assert!(est.update(&h).is_none());
        assert!(est.is_initialized());
    }

    #[test]
    fn steady_state_full_utilization_power_is_one() {
        // Queue empty and stable, egress transmitting at exactly line rate:
        // λ = µ = b, ν = b·τ, so Γ_norm = b·b·τ / (b²τ) = 1.
        let mut est = PowerEstimator::new(TAU);
        let bps = B.bytes_per_sec();
        let dt = Tick::from_micros(2);
        let bytes_per_dt = (bps * dt.as_secs_f64()).round() as u64;
        let mut ts = Tick::from_micros(10);
        let mut tx = 0u64;
        let h = header(&[hop(ts, 0, tx)]);
        assert!(est.update(&h).is_none());
        for _ in 0..20 {
            ts += dt;
            tx += bytes_per_dt;
            let h = header(&[hop(ts, 0, tx)]);
            let s = est.update(&h).expect("sample");
            assert!((s.raw - 1.0).abs() < 1e-9, "raw={}", s.raw);
        }
        assert!((est.smoothed() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn growing_queue_raises_power_above_one() {
        // Queue grows while the port transmits at line rate: λ > b.
        let mut est = PowerEstimator::new(TAU);
        let bps = B.bytes_per_sec();
        let dt = Tick::from_micros(2);
        let tx_per_dt = (bps * dt.as_secs_f64()).round() as u64;
        let q_growth_per_dt = tx_per_dt / 2; // arrivals at 1.5x line rate
        let mut ts = Tick::from_micros(10);
        let (mut tx, mut q) = (0u64, 0u64);
        est.update(&header(&[hop(ts, q, tx)]));
        let mut last = PowerSample {
            smoothed: 0.0,
            raw: 0.0,
            bottleneck_hop: 0,
        };
        for _ in 0..10 {
            ts += dt;
            tx += tx_per_dt;
            q += q_growth_per_dt;
            last = est.update(&header(&[hop(ts, q, tx)])).unwrap();
        }
        assert!(last.raw > 1.2, "raw={}", last.raw);
        assert!(est.smoothed() > 1.0);
    }

    #[test]
    fn draining_idle_queue_hits_floor_not_zero_or_nan() {
        // Queue drains with zero egress counter movement (e.g. a paused
        // port): λ = q̇ < 0 — must clamp, not explode.
        let mut est = PowerEstimator::new(TAU);
        let mut ts = Tick::from_micros(10);
        est.update(&header(&[hop(ts, 100_000, 500)]));
        ts += Tick::from_micros(2);
        let s = est.update(&header(&[hop(ts, 0, 500)])).unwrap();
        assert_eq!(s.raw, MIN_NORM_POWER);
        assert!(s.smoothed.is_finite());
    }

    #[test]
    fn max_hop_is_selected() {
        // Two hops; the second is congested (growing queue), the first idle.
        let mut est = PowerEstimator::new(TAU);
        let bps = B.bytes_per_sec();
        let dt = Tick::from_micros(2);
        let tx = (bps * dt.as_secs_f64()).round() as u64;
        let t0 = Tick::from_micros(10);
        let t1 = t0 + dt;
        est.update(&header(&[hop(t0, 0, 0), hop(t0, 0, 0)]));
        let s = est
            .update(&header(&[
                hop(t1, 0, tx / 4),  // hop 0: 25% utilization
                hop(t1, 50_000, tx), // hop 1: line rate + queue
            ]))
            .unwrap();
        assert_eq!(s.bottleneck_hop, 1);
        assert!(s.raw > 1.0);
    }

    #[test]
    fn path_change_resets_gradient() {
        let mut est = PowerEstimator::new(TAU);
        let t0 = Tick::from_micros(10);
        est.update(&header(&[hop(t0, 0, 0)]));
        // Path length changes from 1 to 2 hops: must re-bootstrap.
        let t1 = t0 + Tick::from_micros(2);
        assert!(est
            .update(&header(&[hop(t1, 0, 100), hop(t1, 0, 100)]))
            .is_none());
        // Next ack on the two-hop path works again.
        let t2 = t1 + Tick::from_micros(2);
        assert!(est
            .update(&header(&[hop(t2, 0, 200), hop(t2, 0, 200)]))
            .is_some());
    }

    #[test]
    fn zero_dt_hop_is_skipped() {
        let mut est = PowerEstimator::new(TAU);
        let t0 = Tick::from_micros(10);
        est.update(&header(&[hop(t0, 0, 0)]));
        // Same timestamp (duplicated telemetry): no usable hop -> None.
        assert!(est.update(&header(&[hop(t0, 10, 10)])).is_none());
    }

    #[test]
    fn closed_form_matches_int_path() {
        let tau = TAU.as_secs_f64();
        let b = B.bytes_per_sec();
        // q = 50KB, q̇ = 0.25b, µ = b.
        let direct = norm_power_closed_form(50_000.0, 0.25 * b, b, b, tau);

        let mut est = PowerEstimator::new(TAU);
        let dt = Tick::from_micros(2);
        let dts = dt.as_secs_f64();
        let t0 = Tick::from_micros(10);
        let q0 = 50_000.0 - 0.25 * b * dts; // so that q(t1) = 50KB
        est.update(&header(&[hop(t0, q0.round() as u64, 0)]));
        let s = est
            .update(&header(&[hop(t0 + dt, 50_000, (b * dts).round() as u64)]))
            .unwrap();
        assert!(
            (s.raw - direct).abs() / direct < 1e-3,
            "int={} direct={}",
            s.raw,
            direct
        );
    }

    #[test]
    fn smoothing_converges_within_one_rtt_scale() {
        // Feeding a constant raw power x, smoothed -> x with time constant τ.
        let mut est = PowerEstimator::new(TAU);
        let bps = B.bytes_per_sec();
        let dt = Tick::from_micros(2);
        let tx_per_dt = (bps * dt.as_secs_f64()) as u64;
        let mut ts = Tick::from_micros(10);
        let mut tx = 0u64;
        est.update(&header(&[hop(ts, 0, tx)]));
        // Constant queue of 1 BDP, line-rate egress: Γ_norm = 2 exactly.
        let q = (bps * TAU.as_secs_f64()) as u64;
        for _ in 0..60 {
            ts += dt;
            tx += tx_per_dt;
            est.update(&header(&[hop(ts, q, tx)]));
        }
        // 60 samples * 2us = 6 RTTs: smoothed must be within 1% of 2.0.
        assert!((est.smoothed() - 2.0).abs() < 0.02, "{}", est.smoothed());
    }
}
