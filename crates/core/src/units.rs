//! Bandwidth and byte-count helpers shared by the control laws and the
//! simulator.

use crate::time::{Tick, PS_PER_SEC};
use std::fmt;

/// Link or NIC bandwidth in bits per second.
///
/// Stored as integer bits/s so topology definitions are exact; converted to
/// `f64` bytes/s only inside control-law arithmetic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bandwidth(pub u64);

impl Bandwidth {
    /// Zero bandwidth (used for disabled/ceased links, e.g. a circuit
    /// during reconfiguration "night").
    pub const ZERO: Bandwidth = Bandwidth(0);

    /// Construct from bits per second.
    #[inline]
    pub const fn from_bps(bps: u64) -> Self {
        Bandwidth(bps)
    }

    /// Construct from gigabits per second.
    #[inline]
    pub const fn gbps(g: u64) -> Self {
        Bandwidth(g * 1_000_000_000)
    }

    /// Construct from megabits per second.
    #[inline]
    pub const fn mbps(m: u64) -> Self {
        Bandwidth(m * 1_000_000)
    }

    /// Raw bits per second.
    #[inline]
    pub const fn bps(self) -> u64 {
        self.0
    }

    /// Bytes per second as `f64` (control-law arithmetic).
    #[inline]
    pub fn bytes_per_sec(self) -> f64 {
        self.0 as f64 / 8.0
    }

    /// Gigabits per second as `f64` (reporting).
    #[inline]
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time to serialize `bytes` onto the wire at this bandwidth.
    ///
    /// Exact integer arithmetic (128-bit intermediate); rounds up so that a
    /// packet never finishes transmitting early. Panics on zero bandwidth —
    /// callers must not serialize onto a down link.
    #[inline]
    pub fn tx_time(self, bytes: u64) -> Tick {
        assert!(self.0 > 0, "tx_time on zero-bandwidth link");
        let bits = bytes as u128 * 8;
        let ps = (bits * PS_PER_SEC as u128).div_ceil(self.0 as u128);
        Tick(ps as u64)
    }

    /// Bandwidth-delay product in bytes (fractional, for control laws).
    #[inline]
    pub fn bdp_bytes(self, rtt: Tick) -> f64 {
        self.bytes_per_sec() * rtt.as_secs_f64()
    }

    /// True if this link currently carries no bandwidth.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{}Gbps", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{}Mbps", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_time_100g() {
        // 1000 bytes at 100 Gbps = 80 ns exactly.
        let bw = Bandwidth::gbps(100);
        assert_eq!(bw.tx_time(1000), Tick::from_nanos(80));
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 3 bps: 8/3 s -> must round up, not truncate.
        let bw = Bandwidth::from_bps(3);
        let t = bw.tx_time(1);
        assert!(t.as_ps() * 3 >= 8 * PS_PER_SEC);
        assert!((t.as_ps() - 1) * 3 < 8 * PS_PER_SEC);
    }

    #[test]
    fn tx_time_no_overflow_large() {
        // A 1 GB transfer at 1 Mbps is ~8000 s; must not overflow u64 math.
        let bw = Bandwidth::mbps(1);
        let t = bw.tx_time(1_000_000_000);
        assert_eq!(t, Tick::from_secs(8000));
    }

    #[test]
    fn bdp() {
        // 25 Gbps * 20 us = 62.5 KB.
        let bw = Bandwidth::gbps(25);
        let bdp = bw.bdp_bytes(Tick::from_micros(20));
        assert!((bdp - 62_500.0).abs() < 1e-6);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Bandwidth::gbps(25)), "25Gbps");
        assert_eq!(format!("{}", Bandwidth::mbps(100)), "100Mbps");
        assert_eq!(format!("{}", Bandwidth::from_bps(10)), "10bps");
    }

    #[test]
    #[should_panic]
    fn tx_on_dead_link_panics() {
        Bandwidth::ZERO.tx_time(1);
    }
}
