//! In-band network telemetry (INT) header types.
//!
//! PowerTCP uses the same INT header layout as HPCC (Li et al., SIGCOMM
//! 2019, Figure 4): every switch along the path appends, *at the moment a
//! packet is scheduled for transmission*, the egress-port state it needs to
//! reconstruct the bottleneck link dynamics:
//!
//! * `qlen` — egress queue length in bytes,
//! * `ts` — egress timestamp,
//! * `tx_bytes` — cumulative bytes transmitted by the egress port,
//! * `b` — configured egress link bandwidth.
//!
//! The receiver echoes the accumulated stack back on the ACK, so the sender
//! observes two consecutive snapshots of every hop and can compute per-hop
//! queue gradients and transmission rates (Algorithm 1 of the paper).
//!
//! The stack is a fixed-capacity inline array: no allocation per packet, and
//! a hard bound mirroring the real-world header budget (the paper's TCP
//! option encoding supports 4 round-trip hops; our default of 8 covers the
//! forward path of a 3-tier fat-tree with room to spare).

use crate::time::Tick;
use crate::units::Bandwidth;

/// Maximum number of per-hop entries an [`IntHeader`] can carry.
pub const MAX_INT_HOPS: usize = 8;

/// Telemetry pushed by one switch egress port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct IntHopMetadata {
    /// Identifier of the switch that pushed this entry (diagnostics only —
    /// the control law never reads it).
    pub node: u32,
    /// Egress port index on that switch (diagnostics only).
    pub port: u16,
    /// Egress queue length in bytes at transmission-scheduling time.
    pub qlen_bytes: u64,
    /// Egress timestamp.
    pub ts: Tick,
    /// Cumulative bytes transmitted by this egress port.
    pub tx_bytes: u64,
    /// Configured bandwidth of the egress link.
    pub bandwidth: Bandwidth,
}

/// A stack of per-hop telemetry entries accumulated along a path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct IntHeader {
    hops: [IntHopMetadata; MAX_INT_HOPS],
    len: u8,
}

impl IntHeader {
    /// An empty header (inserted by the sender, filled by switches).
    pub const fn new() -> Self {
        IntHeader {
            hops: [IntHopMetadata {
                node: 0,
                port: 0,
                qlen_bytes: 0,
                ts: Tick(0),
                tx_bytes: 0,
                bandwidth: Bandwidth(0),
            }; MAX_INT_HOPS],
            len: 0,
        }
    }

    /// Number of hops recorded so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no switch has pushed telemetry yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one hop's telemetry. Returns `false` (and records nothing) if
    /// the stack is full — matching hardware behaviour where a packet simply
    /// stops accumulating metadata once the header budget is exhausted.
    #[inline]
    pub fn push(&mut self, hop: IntHopMetadata) -> bool {
        if (self.len as usize) < MAX_INT_HOPS {
            self.hops[self.len as usize] = hop;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// The recorded hops, in path order.
    #[inline]
    pub fn hops(&self) -> &[IntHopMetadata] {
        &self.hops[..self.len as usize]
    }

    /// Reset to empty (sender reuses packet buffers).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// On-wire size in bytes of this header, following the paper's encoding
    /// (32-bit base header + 64-bit... the paper's Tofino PoC uses a 32-bit
    /// base plus 64 bits per hop; HPCC's original encoding is 8 bytes per
    /// hop as well). Used by the simulator when accounting link occupancy of
    /// telemetry-bearing packets.
    #[inline]
    pub fn wire_bytes(&self) -> u32 {
        4 + 8 * self.len as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(node: u32, q: u64) -> IntHopMetadata {
        IntHopMetadata {
            node,
            port: 0,
            qlen_bytes: q,
            ts: Tick::from_nanos(node as u64),
            tx_bytes: 10 * node as u64,
            bandwidth: Bandwidth::gbps(100),
        }
    }

    #[test]
    fn push_and_read() {
        let mut h = IntHeader::new();
        assert!(h.is_empty());
        assert!(h.push(hop(1, 100)));
        assert!(h.push(hop(2, 200)));
        assert_eq!(h.len(), 2);
        assert_eq!(h.hops()[0].node, 1);
        assert_eq!(h.hops()[1].qlen_bytes, 200);
    }

    #[test]
    fn overflow_is_dropped_not_panicking() {
        let mut h = IntHeader::new();
        for i in 0..MAX_INT_HOPS {
            assert!(h.push(hop(i as u32, 0)));
        }
        assert!(!h.push(hop(99, 0)));
        assert_eq!(h.len(), MAX_INT_HOPS);
        // The overflowing hop must not have clobbered anything.
        assert!(h.hops().iter().all(|m| m.node != 99));
    }

    #[test]
    fn clear_resets() {
        let mut h = IntHeader::new();
        h.push(hop(1, 1));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.wire_bytes(), 4);
    }

    #[test]
    fn wire_size_grows_per_hop() {
        let mut h = IntHeader::new();
        assert_eq!(h.wire_bytes(), 4);
        h.push(hop(1, 0));
        assert_eq!(h.wire_bytes(), 12);
        h.push(hop(2, 0));
        assert_eq!(h.wire_bytes(), 20);
    }
}
