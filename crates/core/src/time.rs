//! Simulation time as integer picoseconds.
//!
//! Congestion control in datacenters operates on microsecond RTTs and
//! 100 Gbps links where a single byte occupies 80 ps on the wire. Using an
//! integer picosecond clock keeps every timestamp, serialization delay, and
//! INT-derived rate estimate exact and deterministic — no floating-point
//! drift between runs. A `u64` of picoseconds covers ~213 days, far beyond
//! any simulation horizon used here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in time (or a duration) in integer picoseconds.
///
/// `Tick` is deliberately a single type for both instants and durations:
/// the simulator only ever subtracts instants to get durations and adds
/// durations to instants, and a second newtype buys little safety here
/// while doubling the arithmetic surface (guide idiom: simplicity over
/// type tricks).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tick(pub u64);

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

impl Tick {
    /// The zero instant / zero duration.
    pub const ZERO: Tick = Tick(0);
    /// The maximum representable instant; used as "never" for timers.
    pub const MAX: Tick = Tick(u64::MAX);

    /// Construct from whole picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Tick(ps)
    }

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Tick(ns * PS_PER_NS)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Tick(us * PS_PER_US)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Tick(ms * PS_PER_MS)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Tick(s * PS_PER_SEC)
    }

    /// Construct from fractional seconds (rounded to the nearest picosecond).
    ///
    /// Panics if `s` is negative or not finite — a negative duration is
    /// always a logic error in the simulator.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        Tick((s * PS_PER_SEC as f64).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in fractional seconds (for control-law math).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Value in fractional microseconds (for human-readable reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Value in fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / PS_PER_MS as f64
    }

    /// Duration since an earlier instant, clamping to zero instead of
    /// underflowing. Reordered timestamps (e.g. INT metadata from different
    /// switch ports) must never crash the control law.
    #[inline]
    pub fn saturating_sub(self, earlier: Tick) -> Tick {
        Tick(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Tick) -> Option<Tick> {
        self.0.checked_add(rhs.0).map(Tick)
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Elementwise minimum.
    #[inline]
    pub fn min(self, other: Tick) -> Tick {
        Tick(self.0.min(other.0))
    }

    /// Elementwise maximum.
    #[inline]
    pub fn max(self, other: Tick) -> Tick {
        Tick(self.0.max(other.0))
    }
}

impl Add for Tick {
    type Output = Tick;
    #[inline]
    fn add(self, rhs: Tick) -> Tick {
        Tick(self.0 + rhs.0)
    }
}

impl AddAssign for Tick {
    #[inline]
    fn add_assign(&mut self, rhs: Tick) {
        self.0 += rhs.0;
    }
}

impl Sub for Tick {
    type Output = Tick;
    #[inline]
    fn sub(self, rhs: Tick) -> Tick {
        debug_assert!(self.0 >= rhs.0, "Tick subtraction underflow");
        Tick(self.0 - rhs.0)
    }
}

impl SubAssign for Tick {
    #[inline]
    fn sub_assign(&mut self, rhs: Tick) {
        debug_assert!(self.0 >= rhs.0, "Tick subtraction underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Tick {
    type Output = Tick;
    #[inline]
    fn mul(self, rhs: u64) -> Tick {
        Tick(self.0 * rhs)
    }
}

impl Div<u64> for Tick {
    type Output = Tick;
    #[inline]
    fn div(self, rhs: u64) -> Tick {
        Tick(self.0 / rhs)
    }
}

impl Sum for Tick {
    fn sum<I: Iterator<Item = Tick>>(iter: I) -> Tick {
        iter.fold(Tick::ZERO, Add::add)
    }
}

impl fmt::Debug for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Tick {
    /// Human-oriented rendering with an adaptive unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= PS_PER_SEC {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if ps >= PS_PER_MS {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ps >= PS_PER_US {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else if ps >= PS_PER_NS {
            write!(f, "{:.1}ns", ps as f64 / PS_PER_NS as f64)
        } else {
            write!(f, "{ps}ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Tick::from_nanos(1), Tick::from_ps(1_000));
        assert_eq!(Tick::from_micros(1), Tick::from_nanos(1_000));
        assert_eq!(Tick::from_millis(1), Tick::from_micros(1_000));
        assert_eq!(Tick::from_secs(1), Tick::from_millis(1_000));
    }

    #[test]
    fn seconds_roundtrip() {
        let t = Tick::from_micros(20);
        assert!((t.as_secs_f64() - 20e-6).abs() < 1e-18);
        assert_eq!(Tick::from_secs_f64(20e-6), t);
    }

    #[test]
    fn arithmetic() {
        let a = Tick::from_micros(5);
        let b = Tick::from_micros(3);
        assert_eq!(a + b, Tick::from_micros(8));
        assert_eq!(a - b, Tick::from_micros(2));
        assert_eq!(a * 2, Tick::from_micros(10));
        assert_eq!(a / 5, Tick::from_micros(1));
        assert_eq!(b.saturating_sub(a), Tick::ZERO);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Tick::from_ps(5)), "5ps");
        assert_eq!(format!("{}", Tick::from_nanos(80)), "80.0ns");
        assert_eq!(format!("{}", Tick::from_micros(20)), "20.000us");
        assert_eq!(format!("{}", Tick::from_millis(4)), "4.000ms");
        assert_eq!(format!("{}", Tick::from_secs(2)), "2.000000s");
    }

    #[test]
    fn min_max_sum() {
        let a = Tick::from_nanos(10);
        let b = Tick::from_nanos(20);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        let s: Tick = [a, b].into_iter().sum();
        assert_eq!(s, Tick::from_nanos(30));
    }

    #[test]
    #[should_panic]
    fn negative_duration_panics() {
        let _ = Tick::from_secs_f64(-1.0);
    }
}
