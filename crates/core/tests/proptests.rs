//! Property-based tests for the PowerTCP control-law primitives.

use powertcp_core::{
    norm_power_closed_form, AckInfo, Bandwidth, CcContext, CongestionControl, IntHeader,
    IntHopMetadata, PowerEstimator, PowerTcp, PowerTcpConfig, ThetaPowerTcp, Tick, MAX_NORM_POWER,
    MIN_NORM_POWER,
};
use proptest::prelude::*;

fn ctx() -> CcContext {
    CcContext {
        base_rtt: Tick::from_micros(20),
        host_bw: Bandwidth::gbps(25),
        mtu: 1000,
        expected_flows: 8,
    }
}

fn hop(ts: Tick, qlen: u64, tx: u64, bw: Bandwidth) -> IntHopMetadata {
    IntHopMetadata {
        node: 1,
        port: 0,
        qlen_bytes: qlen,
        ts,
        tx_bytes: tx,
        bandwidth: bw,
    }
}

proptest! {
    /// Power is scale-invariant: multiplying bandwidth, queue, and rates by
    /// the same factor leaves normalized power unchanged (it is the point
    /// of normalizing by the base power e = b²τ).
    #[test]
    fn norm_power_scale_invariant(
        q in 0.0..10_000_000.0f64,
        q_dot_frac in -1.0..8.0f64,
        mu_frac in 0.0..1.0f64,
        scale in 0.01..100.0f64,
    ) {
        let tau = 20e-6;
        let b = 12.5e9; // 100G in bytes/s
        let p1 = norm_power_closed_form(q, q_dot_frac * b, mu_frac * b, b, tau);
        let p2 = norm_power_closed_form(
            q * scale, q_dot_frac * b * scale, mu_frac * b * scale, b * scale, tau);
        prop_assert!((p1 - p2).abs() <= 1e-9 * p1.abs().max(1.0),
            "p1={p1} p2={p2}");
    }

    /// Normalized power is monotone in queue length for fixed dynamics
    /// (with non-negative current), and monotone in arrival rate for fixed
    /// queue length: the two dimensions the paper's Figure 2 separates.
    #[test]
    fn norm_power_monotonicity(
        q in 0.0..5_000_000.0f64,
        dq in 1.0..5_000_000.0f64,
        lam in 0.0..4.0f64,
        dlam in 0.001..4.0f64,
    ) {
        let tau = 20e-6;
        let b = 12.5e9;
        // Fix current = lam*b >= 0: more queue, more power.
        let p_lo = norm_power_closed_form(q, 0.0, lam * b, b, tau);
        let p_hi = norm_power_closed_form(q + dq, 0.0, lam * b, b, tau);
        prop_assert!(p_hi >= p_lo);
        // Fix voltage: more current, more power.
        let c_lo = norm_power_closed_form(q, lam * b, 0.0, b, tau);
        let c_hi = norm_power_closed_form(q, (lam + dlam) * b, 0.0, b, tau);
        prop_assert!(c_hi >= c_lo);
    }

    /// The estimator never yields a non-finite or out-of-clamp sample, no
    /// matter how adversarial the INT stream (jumping counters, reordered
    /// timestamps, changing bandwidth).
    #[test]
    fn estimator_output_always_bounded(
        steps in prop::collection::vec(
            (1u64..5_000_000, 0u64..10_000_000, 0u64..100_000_000, 1u64..400), 2..60),
    ) {
        let mut est = PowerEstimator::new(Tick::from_micros(20));
        let mut ts = Tick::from_micros(1);
        for (dt_ns, qlen, tx, bw_g) in steps {
            ts += Tick::from_nanos(dt_ns);
            let mut h = IntHeader::new();
            h.push(hop(ts, qlen, tx, Bandwidth::gbps(bw_g)));
            if let Some(s) = est.update(&h) {
                prop_assert!(s.raw.is_finite());
                prop_assert!(s.raw >= MIN_NORM_POWER && s.raw <= MAX_NORM_POWER);
                prop_assert!(s.smoothed.is_finite());
                prop_assert!(s.smoothed >= MIN_NORM_POWER * 0.999);
                prop_assert!(s.smoothed <= MAX_NORM_POWER * 1.001);
            }
        }
    }

    /// PowerTCP's window stays within its clamps and finite under arbitrary
    /// ACK streams.
    #[test]
    fn powertcp_window_bounded(
        steps in prop::collection::vec(
            (1u64..10_000_000, 0u64..20_000_000, 0u64..1_000_000_000), 2..80),
    ) {
        let mut cc = PowerTcp::new(PowerTcpConfig::default(), ctx());
        let max = ctx().host_bdp_bytes() * 2.0;
        let mut ts = Tick::from_micros(1);
        let mut seq = 0u64;
        for (dt_ns, qlen, tx) in steps {
            ts += Tick::from_nanos(dt_ns);
            seq += 1000;
            let mut h = IntHeader::new();
            h.push(hop(ts, qlen, tx, Bandwidth::gbps(100)));
            cc.on_ack(&AckInfo {
                now: ts,
                ack_seq: seq,
                newly_acked: 1000,
                snd_nxt: seq + 50_000,
                rtt: Tick::from_micros(21),
                int: Some(&h),
                ecn_marked: false,
            });
            prop_assert!(cc.cwnd().is_finite());
            prop_assert!(cc.cwnd() > 0.0 && cc.cwnd() <= max + 1.0);
        }
    }

    /// θ-PowerTCP likewise, under arbitrary RTT samples.
    #[test]
    fn theta_window_bounded(
        steps in prop::collection::vec(
            (1u64..10_000_000, 15_000u64..400_000), 2..120),
    ) {
        let mut cc = ThetaPowerTcp::new(PowerTcpConfig::default(), ctx());
        let max = ctx().host_bdp_bytes() * 2.0;
        let mut ts = Tick::from_micros(1);
        let mut seq = 0u64;
        for (dt_ns, rtt_ns) in steps {
            ts += Tick::from_nanos(dt_ns);
            seq += 1000;
            cc.on_ack(&AckInfo {
                now: ts,
                ack_seq: seq,
                newly_acked: 1000,
                snd_nxt: seq + 50_000,
                rtt: Tick::from_nanos(rtt_ns),
                int: None,
                ecn_marked: false,
            });
            prop_assert!(cc.cwnd().is_finite());
            prop_assert!(cc.cwnd() > 0.0 && cc.cwnd() <= max + 1.0);
        }
    }

    /// Wire encoding round-trips within documented quantization error for
    /// arbitrary hop stacks.
    #[test]
    fn wire_roundtrip_within_quantization(
        hops in prop::collection::vec(
            (0u64..100_000_000, 1u64..16_000_000, 0u64..u32::MAX as u64, 1u64..800),
            1..8usize),
    ) {
        use powertcp_core::{wire_decode, wire_encode, IntHopMetadata};
        let mut h = IntHeader::new();
        for &(q, ts_ns, tx, gbps) in &hops {
            h.push(IntHopMetadata {
                node: 0,
                port: 0,
                qlen_bytes: q,
                ts: Tick::from_nanos(ts_ns),
                tx_bytes: tx,
                bandwidth: Bandwidth::gbps(gbps),
            });
        }
        let mut buf = [0u8; 4 + 8 * 8];
        let n = wire_encode(&h, 8, &mut buf).unwrap();
        let wire = wire_decode(&buf[..n]).unwrap();
        prop_assert_eq!(wire.len(), hops.len());
        for (w, &(q, ts_ns, tx, gbps)) in wire.iter().zip(&hops) {
            // Queue: quantized down by at most 128 B, saturating at 2^27.
            let q_sat = q.min(((1u64 << 20) - 1) << 7);
            prop_assert!(w.qlen_bytes <= q_sat);
            prop_assert!(q_sat - w.qlen_bytes < 128);
            // Timestamp: exact modulo 2^24 ns.
            prop_assert_eq!(w.ts_ns_wrapped, ts_ns & ((1 << 24) - 1));
            // Tx: quantized down by < 1 KiB, modulo 2^24.
            let tx_mod = (tx >> 10 << 10) & ((1u64 << 24) - 1);
            prop_assert_eq!(w.tx_bytes_wrapped, tx_mod);
            // Bandwidth: within 10% (log-quantized).
            let back = w.bandwidth.as_gbps_f64();
            let rel_err = (back - gbps as f64).abs() / (gbps as f64);
            prop_assert!(rel_err < 0.10);
        }
    }

    /// Tick arithmetic: (a + b) - b == a, saturating_sub never underflows,
    /// and tx_time is monotone in bytes.
    #[test]
    fn tick_and_bandwidth_laws(
        a in 0u64..u64::MAX / 4,
        b in 0u64..u64::MAX / 4,
        bytes1 in 0u64..1_000_000,
        bytes2 in 0u64..1_000_000,
        gbps in 1u64..400,
    ) {
        let ta = Tick::from_ps(a);
        let tb = Tick::from_ps(b);
        prop_assert_eq!((ta + tb) - tb, ta);
        prop_assert_eq!(tb.saturating_sub(ta + tb), Tick::ZERO);
        let bw = Bandwidth::gbps(gbps);
        let (lo, hi) = if bytes1 <= bytes2 { (bytes1, bytes2) } else { (bytes2, bytes1) };
        prop_assert!(bw.tx_time(lo) <= bw.tx_time(hi));
    }
}
