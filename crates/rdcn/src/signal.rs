//! Circuit-state signalling to endpoints.
//!
//! reTCP's endpoint mechanism needs to know when the circuit serving its
//! destination rack comes up or goes down. In a real deployment the ToR
//! delivers this out-of-band; here a wrapper endpoint watches the (shared,
//! static) rotor schedule with timers and forwards
//! [`NetSignal::Circuit`] events to the wrapped transport's congestion
//! controllers. PowerTCP and HPCC ignore the signal (they discover
//! bandwidth through feedback), so the same harness runs all algorithms.

use crate::schedule::RotorSchedule;
use dcn_sim::{Endpoint, EndpointCtx, Packet};
use dcn_transport::TransportHost;
use powertcp_core::{Bandwidth, NetSignal, Tick};

/// Timer-key namespace for the wrapper (top byte), chosen to never
/// collide with `TransportHost`'s kinds.
const K_SIGNAL: u64 = 0x7F << 56;

/// Endpoint wrapper adding circuit-state signals to a [`TransportHost`].
pub struct CircuitAwareHost {
    inner: TransportHost,
    schedule: RotorSchedule,
    my_rack: usize,
    /// The rack whose circuit matters to this host's flows (the harness
    /// points it at the destination rack).
    target_rack: usize,
    circuit_bw: Bandwidth,
    was_up: bool,
}

impl CircuitAwareHost {
    /// Wrap `inner`, signalling circuit state for `my_rack → target_rack`.
    pub fn new(
        inner: TransportHost,
        schedule: RotorSchedule,
        my_rack: usize,
        target_rack: usize,
        circuit_bw: Bandwidth,
    ) -> Self {
        assert_ne!(my_rack, target_rack);
        CircuitAwareHost {
            inner,
            schedule,
            my_rack,
            target_rack,
            circuit_bw,
            was_up: false,
        }
    }

    /// Access the wrapped transport (e.g. to add flows).
    pub fn transport_mut(&mut self) -> &mut TransportHost {
        &mut self.inner
    }

    fn next_transition(&self, now: Tick) -> Tick {
        if self
            .schedule
            .circuit_up(self.my_rack, self.target_rack, now)
        {
            // Currently up: next transition is this day's end.
            self.schedule.at(now).phase_end
        } else {
            self.schedule
                .next_day_start(self.my_rack, self.target_rack, now)
        }
    }

    fn check_and_signal(&mut self, ctx: &mut EndpointCtx<'_>) {
        let up = self
            .schedule
            .circuit_up(self.my_rack, self.target_rack, ctx.now);
        if up != self.was_up {
            self.was_up = up;
            self.inner.signal_all(
                ctx.now,
                NetSignal::Circuit {
                    up,
                    bandwidth: self.circuit_bw,
                },
            );
        }
        // Arm just past the next transition so `circuit_up` sees the new
        // phase when the timer fires.
        let next = self.next_transition(ctx.now);
        ctx.set_timer(next.max(ctx.now) + Tick::from_nanos(1), K_SIGNAL);
    }
}

impl Endpoint for CircuitAwareHost {
    fn on_start(&mut self, ctx: &mut EndpointCtx<'_>) {
        self.inner.on_start(ctx);
        self.check_and_signal(ctx);
    }

    fn on_packet(&mut self, pkt: Box<Packet>, ctx: &mut EndpointCtx<'_>) {
        self.inner.on_packet(pkt, ctx);
    }

    fn on_timer(&mut self, key: u64, ctx: &mut EndpointCtx<'_>) {
        if key & K_SIGNAL == K_SIGNAL {
            self.check_and_signal(ctx);
        } else {
            self.inner.on_timer(key, ctx);
        }
    }

    fn cc_samples(&self, out: &mut Vec<dcn_sim::CcFlowSample>) {
        self.inner.cc_samples(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_times_follow_schedule() {
        let s = RotorSchedule::paper_defaults();
        // my=0 target=1: matching 0, day [0, 225us).
        let inner = TransportHost::new(
            dcn_transport::TransportConfig::default(),
            dcn_transport::MetricsHub::new_shared(),
            Box::new(|_, _| unreachable!("no flows in this test")),
        );
        let h = CircuitAwareHost::new(inner, s, 0, 1, Bandwidth::gbps(100));
        // During the day, next transition = day end.
        assert_eq!(
            h.next_transition(Tick::from_micros(10)),
            Tick::from_micros(225)
        );
        // During the rest of the week, next transition = next week's day 0.
        let later = Tick::from_micros(300);
        let next = h.next_transition(later);
        assert_eq!(next, s.week());
    }
}
