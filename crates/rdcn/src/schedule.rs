//! The rotor (round-robin) circuit schedule of §5.
//!
//! One optical circuit switch connects all ToRs and cycles through
//! `n_tors − 1` perfect matchings; it stays in a matching for one *day*
//! (225 µs) and takes one *night* (20 µs) to reconfigure. Every ToR pair
//! is directly connected once per *week* (a full cycle of matchings).
//! Matching `m` connects ToR `i` to ToR `(i + m + 1) mod n`.

use powertcp_core::Tick;

/// The rotation schedule; cheap to copy and shared by ToRs, the circuit
/// switch, and circuit-aware endpoints.
#[derive(Clone, Copy, Debug)]
pub struct RotorSchedule {
    /// Number of ToRs on the circuit switch.
    pub n_tors: usize,
    /// Time spent in each matching ("day", paper: 225 µs).
    pub day: Tick,
    /// Reconfiguration gap ("night", paper: 20 µs).
    pub night: Tick,
}

/// Where a given instant falls in the schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedulePoint {
    /// Index of the current (or upcoming, if in night) matching.
    pub matching: usize,
    /// True during a day (circuit usable), false during a night.
    pub in_day: bool,
    /// End of the current day/night phase.
    pub phase_end: Tick,
}

impl RotorSchedule {
    /// Paper parameters: 25 ToRs, 225 µs days, 20 µs nights.
    pub fn paper_defaults() -> Self {
        RotorSchedule {
            n_tors: 25,
            day: Tick::from_micros(225),
            night: Tick::from_micros(20),
        }
    }

    /// Matchings per week.
    pub fn num_matchings(&self) -> usize {
        self.n_tors - 1
    }

    /// One slot = day + night.
    pub fn slot(&self) -> Tick {
        self.day + self.night
    }

    /// One week = all matchings.
    pub fn week(&self) -> Tick {
        self.slot() * self.num_matchings() as u64
    }

    /// The ToR that `tor` connects to under matching `m`.
    pub fn peer_of(&self, tor: usize, m: usize) -> usize {
        debug_assert!(tor < self.n_tors && m < self.num_matchings());
        (tor + m + 1) % self.n_tors
    }

    /// Inverse: under matching `m`, which ToR sends *to* `tor`.
    pub fn sender_to(&self, tor: usize, m: usize) -> usize {
        (tor + self.n_tors - (m + 1) % self.n_tors) % self.n_tors
    }

    /// Locate `now` within the schedule.
    pub fn at(&self, now: Tick) -> SchedulePoint {
        let slot = self.slot().as_ps();
        let t = now.as_ps();
        let slot_idx = t / slot;
        let within = t - slot_idx * slot;
        let matching = (slot_idx % self.num_matchings() as u64) as usize;
        if within < self.day.as_ps() {
            SchedulePoint {
                matching,
                in_day: true,
                phase_end: Tick::from_ps(slot_idx * slot + self.day.as_ps()),
            }
        } else {
            SchedulePoint {
                // Night belongs to the *next* matching (reconfiguring).
                matching: ((slot_idx + 1) % self.num_matchings() as u64) as usize,
                in_day: false,
                phase_end: Tick::from_ps((slot_idx + 1) * slot),
            }
        }
    }

    /// Next time at or after `now` when the circuit from `src` to `dst`
    /// comes up (start of their shared day).
    pub fn next_day_start(&self, src: usize, dst: usize, now: Tick) -> Tick {
        debug_assert_ne!(src, dst);
        // Matching index that connects src -> dst.
        let m = (dst + self.n_tors - src - 1) % self.n_tors;
        debug_assert!(m < self.num_matchings());
        let week = self.week().as_ps();
        let offset = self.slot().as_ps() * m as u64;
        let t = now.as_ps();
        let base = t / week * week + offset;
        if base >= t {
            Tick::from_ps(base)
        } else {
            Tick::from_ps(base + week)
        }
    }

    /// True if the circuit `src → dst` is currently up (their matching's
    /// day is in progress).
    pub fn circuit_up(&self, src: usize, dst: usize, now: Tick) -> bool {
        let p = self.at(now);
        p.in_day && self.peer_of(src, p.matching) == dst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> RotorSchedule {
        RotorSchedule::paper_defaults()
    }

    #[test]
    fn paper_dimensions() {
        let s = s();
        assert_eq!(s.num_matchings(), 24);
        assert_eq!(s.slot(), Tick::from_micros(245));
        assert_eq!(s.week(), Tick::from_micros(245 * 24));
    }

    #[test]
    fn matchings_are_permutations_covering_all_pairs() {
        let s = s();
        for m in 0..s.num_matchings() {
            let mut seen = vec![false; s.n_tors];
            for i in 0..s.n_tors {
                let j = s.peer_of(i, m);
                assert_ne!(i, j, "no self loops");
                assert!(!seen[j], "matching {m} maps two ToRs to {j}");
                seen[j] = true;
                assert_eq!(s.sender_to(j, m), i, "inverse consistency");
            }
        }
        // Every ordered pair is served exactly once per week.
        for i in 0..s.n_tors {
            let mut peers: Vec<usize> = (0..s.num_matchings()).map(|m| s.peer_of(i, m)).collect();
            peers.sort();
            peers.dedup();
            assert_eq!(peers.len(), s.num_matchings());
        }
    }

    #[test]
    fn at_day_night_boundaries() {
        let s = s();
        let p = s.at(Tick::ZERO);
        assert!(p.in_day);
        assert_eq!(p.matching, 0);
        assert_eq!(p.phase_end, Tick::from_micros(225));
        // Just inside the night.
        let p = s.at(Tick::from_micros(225));
        assert!(!p.in_day);
        assert_eq!(p.matching, 1);
        assert_eq!(p.phase_end, Tick::from_micros(245));
        // Second day.
        let p = s.at(Tick::from_micros(245));
        assert!(p.in_day);
        assert_eq!(p.matching, 1);
    }

    #[test]
    fn matching_wraps_at_week() {
        let s = s();
        let week = s.week();
        let p = s.at(week);
        assert_eq!(p.matching, 0);
        assert!(p.in_day);
    }

    #[test]
    fn next_day_start_and_circuit_up_agree() {
        let s = s();
        let (src, dst) = (3, 11);
        let t0 = s.next_day_start(src, dst, Tick::ZERO);
        // Circuit must be up just after that instant and down just before.
        assert!(s.circuit_up(src, dst, t0 + Tick::from_nanos(1)));
        if t0 > Tick::ZERO {
            assert!(!s.circuit_up(src, dst, t0 - Tick::from_nanos(1)));
        }
        // And it lasts exactly one day.
        assert!(s.circuit_up(src, dst, t0 + s.day - Tick::from_nanos(1)));
        assert!(!s.circuit_up(src, dst, t0 + s.day + Tick::from_nanos(1)));
        // Next occurrence is one week later.
        let t1 = s.next_day_start(src, dst, t0 + s.day);
        assert_eq!(t1, t0 + s.week());
    }

    #[test]
    fn each_pair_once_per_week() {
        let s = s();
        // Count how many days serve (0 -> 7) over one week.
        let mut ups = 0;
        let step = Tick::from_micros(5);
        let mut t = Tick::ZERO;
        let mut was_up = false;
        while t < s.week() {
            let up = s.circuit_up(0, 7, t);
            if up && !was_up {
                ups += 1;
            }
            was_up = up;
            t += step;
        }
        assert_eq!(ups, 1);
    }
}
