//! The RDCN topology of §5: 25 VOQ ToRs × 10 servers, one optical circuit
//! switch (100 G, rotor schedule), and a separate packet-switched network
//! (25 G) — "our setup is in line with prior work [reTCP]".

use crate::circuit::CircuitSwitch;
use crate::schedule::RotorSchedule;
use crate::voq_tor::{LatencySink, VoqGauge, VoqTor, VoqTorConfig};
use dcn_sim::{AppFactory, Network, NetworkBuilder, Node, NodeId, PortId, SwitchConfig};
use powertcp_core::{Bandwidth, Tick};
use std::cell::RefCell;
use std::rc::Rc;

/// RDCN topology parameters (paper §5 defaults).
#[derive(Clone)]
pub struct RdcnConfig {
    /// Rotor schedule (ToR count lives here).
    pub schedule: RotorSchedule,
    /// Servers per ToR (paper: 10).
    pub hosts_per_tor: usize,
    /// Host link bandwidth (paper: 25 G).
    pub host_bw: Bandwidth,
    /// ToR ↔ packet-switch bandwidth (paper: 25 G; Figure 8b sweeps it).
    pub packet_bw: Bandwidth,
    /// Circuit bandwidth (paper: 100 G).
    pub circuit_bw: Bandwidth,
    /// Host link propagation delay.
    pub host_delay: Tick,
    /// ToR ↔ packet switch propagation delay.
    pub packet_delay: Tick,
    /// ToR ↔ circuit switch propagation delay.
    pub circuit_delay: Tick,
    /// reTCP prebuffering window (0 for PowerTCP/HPCC runs).
    pub prebuffer: Tick,
    /// Packet-switch config.
    pub packet_switch: SwitchConfig,
}

impl Default for RdcnConfig {
    fn default() -> Self {
        RdcnConfig {
            schedule: RotorSchedule::paper_defaults(),
            hosts_per_tor: 10,
            host_bw: Bandwidth::gbps(25),
            packet_bw: Bandwidth::gbps(25),
            circuit_bw: Bandwidth::gbps(100),
            host_delay: Tick::from_micros(2),
            packet_delay: Tick::from_micros(3),
            circuit_delay: Tick::from_micros(3),
            prebuffer: Tick::ZERO,
            packet_switch: SwitchConfig::default(),
        }
    }
}

impl RdcnConfig {
    /// A small instance for tests: 4 ToRs × 2 hosts.
    pub fn small() -> Self {
        RdcnConfig {
            schedule: RotorSchedule {
                n_tors: 4,
                day: Tick::from_micros(225),
                night: Tick::from_micros(20),
            },
            hosts_per_tor: 2,
            ..Default::default()
        }
    }

    /// The paper's quoted maximum base RTT for this topology (24 µs);
    /// used to configure τ in the CC algorithms.
    pub fn base_rtt(&self) -> Tick {
        Tick::from_micros(24)
    }
}

/// A built RDCN.
pub struct Rdcn {
    /// The network.
    pub net: Network,
    /// Hosts in rack-major order (`hosts[r * hosts_per_tor + j]`).
    pub hosts: Vec<NodeId>,
    /// VOQ ToR node ids.
    pub tors: Vec<NodeId>,
    /// The optical circuit switch node.
    pub circuit_switch: NodeId,
    /// The packet switch node.
    pub packet_switch: NodeId,
    /// Per-ToR VOQ occupancy gauges.
    pub voq_gauges: Vec<VoqGauge>,
    /// Per-ToR VOQ latency sinks.
    pub latency_sinks: Vec<LatencySink>,
    /// The configuration.
    pub cfg: RdcnConfig,
}

impl Rdcn {
    /// The rack of host index `i`.
    pub fn rack_of(&self, host_index: usize) -> usize {
        host_index / self.cfg.hosts_per_tor
    }

    /// Circuit-port throughput counter of a ToR (cumulative tx bytes).
    pub fn tor_circuit_tx_bytes(&self, rack: usize) -> u64 {
        let Node::Custom(c) = self.net.node(self.tors[rack]) else {
            panic!("not a custom node");
        };
        c.ports[self.cfg.hosts_per_tor + 1].tx_bytes
    }

    /// Packet-uplink throughput counter of a ToR.
    pub fn tor_uplink_tx_bytes(&self, rack: usize) -> u64 {
        let Node::Custom(c) = self.net.node(self.tors[rack]) else {
            panic!("not a custom node");
        };
        c.ports[self.cfg.hosts_per_tor].tx_bytes
    }
}

/// Build the RDCN; `apps` is called with (host NodeId, host index).
pub fn build_rdcn(cfg: RdcnConfig, apps: &mut AppFactory<'_>) -> Rdcn {
    let n_tors = cfg.schedule.n_tors;
    let h = cfg.hosts_per_tor;
    assert!(n_tors >= 2 && h >= 1);

    // Node-id plan: 0 = packet switch, 1 = circuit switch, then per rack
    // r: ToR at 2 + r*(1+h), its hosts following.
    let tor_id = |r: usize| 2 + r * (1 + h);
    let host_id = |r: usize, j: usize| tor_id(r) + 1 + j;
    let total_nodes = 2 + n_tors * (1 + h);

    let mut rack_of_node = vec![u16::MAX; total_nodes];
    let mut local_port_of = vec![u16::MAX; total_nodes];
    for r in 0..n_tors {
        for j in 0..h {
            rack_of_node[host_id(r, j)] = r as u16;
            local_port_of[host_id(r, j)] = j as u16;
        }
    }

    let mut voq_gauges = Vec::new();
    let mut latency_sinks = Vec::new();

    let mut b = NetworkBuilder::new();
    let packet_switch = b.add_switch(cfg.packet_switch);
    let circuit_switch = b.add_custom(Box::new(CircuitSwitch::new(cfg.schedule)));
    let mut tors = Vec::new();
    let mut hosts = Vec::new();
    for r in 0..n_tors {
        let gauge: VoqGauge = Rc::new(RefCell::new(Vec::new()));
        let sink: LatencySink = Rc::new(RefCell::new(Vec::new()));
        voq_gauges.push(gauge.clone());
        latency_sinks.push(sink.clone());
        let tor = b.add_custom(Box::new(VoqTor::new(VoqTorConfig {
            tor_index: r,
            n_hosts: h,
            schedule: cfg.schedule,
            prebuffer: cfg.prebuffer,
            rack_of_node: rack_of_node.clone(),
            local_port_of: local_port_of.clone(),
            voq_gauge: Some(gauge),
            latency_sink: Some(sink),
        })));
        assert_eq!(tor, NodeId(tor_id(r) as u32));
        tors.push(tor);
        for j in 0..h {
            let idx = r * h + j;
            let host = b.add_host(apps(b.next_node_id(), idx));
            assert_eq!(host, NodeId(host_id(r, j) as u32));
            b.connect_host_to_custom(host, tor, cfg.host_bw, cfg.host_delay);
            hosts.push(host);
        }
    }

    // Uplinks and circuit links (after each rack's host ports, in rack
    // order so circuit-switch port r faces ToR r).
    let mut uplink_switch_ports = Vec::new();
    for (r, &tor) in tors.iter().enumerate() {
        let (_pc, ps) =
            b.connect_custom_to_switch(tor, packet_switch, cfg.packet_bw, cfg.packet_delay);
        uplink_switch_ports.push(ps);
        let (pt, pc) = b.connect_customs(tor, circuit_switch, cfg.circuit_bw, cfg.circuit_delay);
        assert_eq!(pt, PortId((h + 1) as u16), "ToR circuit port layout");
        assert_eq!(pc, PortId(r as u16), "circuit switch port r faces ToR r");
    }

    let mut net = b.build();
    // Packet-switch routes: every host via its rack's uplink port.
    for (r, &uplink) in uplink_switch_ports.iter().enumerate() {
        for j in 0..h {
            let hid = NodeId(host_id(r, j) as u32);
            if let Node::Switch(s) = net.node_mut(packet_switch) {
                s.set_route(hid, vec![uplink]);
            }
        }
    }

    Rdcn {
        net,
        hosts,
        tors,
        circuit_switch,
        packet_switch,
        voq_gauges,
        latency_sinks,
        cfg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::NullEndpoint;

    #[test]
    fn shapes_and_id_plan() {
        let mut mk =
            |_id: NodeId, _idx: usize| -> Box<dyn dcn_sim::Endpoint> { Box::new(NullEndpoint) };
        let r = build_rdcn(RdcnConfig::small(), &mut mk);
        assert_eq!(r.tors.len(), 4);
        assert_eq!(r.hosts.len(), 8);
        assert_eq!(r.packet_switch, NodeId(0));
        assert_eq!(r.circuit_switch, NodeId(1));
        assert_eq!(r.rack_of(0), 0);
        assert_eq!(r.rack_of(7), 3);
        // Packet switch has one port per ToR.
        assert_eq!(r.net.switch(r.packet_switch).num_ports(), 4);
    }

    #[test]
    fn paper_scale_builds() {
        let mut mk =
            |_id: NodeId, _idx: usize| -> Box<dyn dcn_sim::Endpoint> { Box::new(NullEndpoint) };
        let r = build_rdcn(RdcnConfig::default(), &mut mk);
        assert_eq!(r.tors.len(), 25);
        assert_eq!(r.hosts.len(), 250);
        assert_eq!(r.voq_gauges.len(), 25);
    }
}
