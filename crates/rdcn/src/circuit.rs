//! The optical circuit switch: a rotating crossbar.
//!
//! Port `i` attaches to ToR `i`. During matching `m`'s day, a packet
//! arriving from ToR `i` leaves on port `peer_of(i, m)` — there is no
//! buffering in the optical domain, but the electrical egress interface
//! can hold a small FIFO while serializing back-to-back arrivals.
//! Packets arriving during a night (possible only if a ToR ignores the
//! guard time) are dropped and counted, mirroring light lost in a
//! reconfiguring switch.

use crate::schedule::RotorSchedule;
use dcn_sim::{CustomCtx, CustomSwitch, Packet, PortId};
use std::collections::VecDeque;

/// Circuit-switch forwarding logic (a [`CustomSwitch`] implementation).
pub struct CircuitSwitch {
    schedule: RotorSchedule,
    /// Per-output FIFO while the port serializes.
    out_queues: Vec<VecDeque<Box<Packet>>>,
    /// Packets that arrived during a night.
    pub night_drops: u64,
    /// Packets forwarded.
    pub forwarded: u64,
}

impl CircuitSwitch {
    /// Create the switch for a schedule.
    pub fn new(schedule: RotorSchedule) -> Self {
        CircuitSwitch {
            schedule,
            out_queues: (0..schedule.n_tors).map(|_| VecDeque::new()).collect(),
            night_drops: 0,
            forwarded: 0,
        }
    }

    fn pump(&mut self, port: usize, ctx: &mut CustomCtx<'_>) {
        if ctx.ports[port].busy {
            return;
        }
        if let Some(pkt) = self.out_queues[port].pop_front() {
            // No queue in the optical domain: INT is not pushed here (the
            // VOQ ToR already stamped the queue the packet actually waited
            // in).
            ctx.start_tx(PortId(port as u16), pkt, None);
        }
    }
}

impl CustomSwitch for CircuitSwitch {
    fn on_packet(&mut self, port: PortId, pkt: Box<Packet>, ctx: &mut CustomCtx<'_>) {
        let p = self.schedule.at(ctx.now);
        if !p.in_day {
            self.night_drops += 1;
            ctx.drop_packet(pkt);
            return;
        }
        let out = self.schedule.peer_of(port.index(), p.matching);
        self.forwarded += 1;
        self.out_queues[out].push_back(pkt);
        self.pump(out, ctx);
    }

    fn on_tx_done(&mut self, port: PortId, ctx: &mut CustomCtx<'_>) {
        self.pump(port.index(), ctx);
    }

    fn on_timer(&mut self, _key: u64, _ctx: &mut CustomCtx<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::{CustomAction, FlowId, NodeId, PortView};
    use powertcp_core::{Bandwidth, Tick};

    fn views(n: usize) -> Vec<PortView> {
        (0..n)
            .map(|i| PortView {
                bandwidth: Bandwidth::gbps(100),
                delay: Tick::from_micros(1),
                busy: false,
                peer: NodeId(i as u32),
            })
            .collect()
    }

    fn pkt() -> Box<Packet> {
        Box::new(Packet::data(
            FlowId(1),
            NodeId(100),
            NodeId(200),
            0,
            1000,
            false,
            Tick::ZERO,
        ))
    }

    #[test]
    fn forwards_by_current_matching() {
        let s = RotorSchedule::paper_defaults();
        let mut sw = CircuitSwitch::new(s);
        let v = views(25);
        let mut actions = Vec::new();
        // Day 0 (matching 0): port 3 -> port 4.
        let mut ctx = CustomCtx::new(Tick::from_micros(10), NodeId(0), &v, &mut actions);
        sw.on_packet(PortId(3), pkt(), &mut ctx);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            CustomAction::StartTx { port, .. } => assert_eq!(*port, PortId(4)),
            other => panic!("unexpected action {other:?}"),
        }
        assert_eq!(sw.forwarded, 1);
    }

    #[test]
    fn night_arrivals_are_dropped() {
        let s = RotorSchedule::paper_defaults();
        let mut sw = CircuitSwitch::new(s);
        let v = views(25);
        let mut actions = Vec::new();
        // 230us is within the first night (225..245).
        let mut ctx = CustomCtx::new(Tick::from_micros(230), NodeId(0), &v, &mut actions);
        sw.on_packet(PortId(3), pkt(), &mut ctx);
        assert_eq!(sw.night_drops, 1);
        assert!(matches!(actions[0], CustomAction::Drop { .. }));
    }

    #[test]
    fn second_day_uses_next_matching() {
        let s = RotorSchedule::paper_defaults();
        let mut sw = CircuitSwitch::new(s);
        let v = views(25);
        let mut actions = Vec::new();
        // 250us: day of matching 1: port 3 -> port 5.
        let mut ctx = CustomCtx::new(Tick::from_micros(250), NodeId(0), &v, &mut actions);
        sw.on_packet(PortId(3), pkt(), &mut ctx);
        match &actions[0] {
            CustomAction::StartTx { port, .. } => assert_eq!(*port, PortId(5)),
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn busy_output_queues_until_tx_done() {
        let s = RotorSchedule::paper_defaults();
        let mut sw = CircuitSwitch::new(s);
        let mut v = views(25);
        let mut actions = Vec::new();
        {
            let mut ctx = CustomCtx::new(Tick::from_micros(10), NodeId(0), &v, &mut actions);
            sw.on_packet(PortId(3), pkt(), &mut ctx);
        }
        // Mark the port busy (the engine would) and deliver another.
        v[4].busy = true;
        {
            let mut ctx = CustomCtx::new(Tick::from_micros(11), NodeId(0), &v, &mut actions);
            sw.on_packet(PortId(3), pkt(), &mut ctx);
        }
        assert_eq!(actions.len(), 1, "second packet queued, not transmitted");
        // TxDone frees the port.
        v[4].busy = false;
        {
            let mut ctx = CustomCtx::new(Tick::from_micros(12), NodeId(0), &v, &mut actions);
            sw.on_tx_done(PortId(4), &mut ctx);
        }
        assert_eq!(actions.len(), 2);
    }
}
