//! # rdcn
//!
//! The reconfigurable-datacenter substrate for the paper's §5 case study:
//! a rotor-scheduled optical circuit switch (225 µs days, 20 µs nights, 24
//! matchings over 25 ToRs), VOQ ToR switches with circuit-exclusive
//! forwarding and reTCP-style prebuffering, a parallel 25 G packet
//! network, and a circuit-state signalling wrapper for endpoints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod schedule;
pub mod signal;
pub mod topology;
pub mod voq_tor;

pub use circuit::CircuitSwitch;
pub use schedule::{RotorSchedule, SchedulePoint};
pub use signal::CircuitAwareHost;
pub use topology::{build_rdcn, Rdcn, RdcnConfig};
pub use voq_tor::{LatencySink, VoqGauge, VoqTor, VoqTorConfig};
