//! The VOQ ToR switch of the RDCN case study (§5).
//!
//! Each ToR keeps per-destination-rack virtual output queues (VOQs, as in
//! the paper's setup), a packet-network uplink, and one circuit port.
//! Data for a remote rack `d`:
//!
//! * drains on the **circuit** while the `me → d` matching's day is up
//!   (exclusively — the paper configures circuit-preferred forwarding),
//!   respecting a guard time so no packet straddles a reconfiguration;
//! * otherwise drains over the **packet network**, *unless* it is inside
//!   the reTCP **prebuffering window**: `prebuffer` before the next
//!   `me → d` day, the VOQ holds packets so a full queue blasts onto the
//!   100 G circuit the instant it appears (Mukerjee et al., NSDI 2020).
//!   `prebuffer = 0` disables holding (the PowerTCP/HPCC configuration).
//!
//! Control packets (ACKs, grants, PFC) always use the packet network —
//! feedback must not wait a week for a circuit.
//!
//! Unroutable packets are retired through [`CustomCtx::drop_packet`],
//! which the engine counts and recycles into the simulator's packet
//! pool (see `dcn_sim::pool`) — drops cost no allocator round-trip.
//!
//! The ToR pushes INT metadata with the *VOQ* occupancy at dequeue, so
//! INT-based CC observes exactly the queue its packets wait in, with the
//! bandwidth of whichever egress (circuit or packet uplink) serves them.

use crate::schedule::RotorSchedule;
use dcn_sim::{CustomCtx, CustomSwitch, NodeId, Packet, PacketKind, PortId};
use powertcp_core::Tick;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Shared gauge of per-rack VOQ occupancy (bytes), for tracers.
pub type VoqGauge = Rc<RefCell<Vec<u64>>>;

/// Shared sink of VOQ queueing delays in seconds (Figure 8b's metric).
pub type LatencySink = Rc<RefCell<Vec<f64>>>;

/// Static configuration of one VOQ ToR.
pub struct VoqTorConfig {
    /// This ToR's index on the circuit switch.
    pub tor_index: usize,
    /// Hosts attached (ports `0..n_hosts`).
    pub n_hosts: usize,
    /// The rotor schedule.
    pub schedule: RotorSchedule,
    /// reTCP prebuffering window (0 = disabled).
    pub prebuffer: Tick,
    /// `rack_of_node[node_id]` = rack index, `u16::MAX` if not a host.
    pub rack_of_node: Vec<u16>,
    /// `local_port_of[node_id]` = host port on its ToR.
    pub local_port_of: Vec<u16>,
    /// Optional live VOQ occupancy gauge (length `n_tors`).
    pub voq_gauge: Option<VoqGauge>,
    /// Optional VOQ queueing-latency sink.
    pub latency_sink: Option<LatencySink>,
}

/// Port layout constants.
impl VoqTorConfig {
    /// The packet-network uplink port index.
    pub fn uplink_port(&self) -> usize {
        self.n_hosts
    }
    /// The circuit port index.
    pub fn circuit_port(&self) -> usize {
        self.n_hosts + 1
    }
}

struct QueuedPkt {
    pkt: Box<Packet>,
    enqueued: Tick,
}

/// The VOQ ToR (a [`CustomSwitch`] implementation).
pub struct VoqTor {
    cfg: VoqTorConfig,
    /// Per-local-host-port FIFO (downlink queues).
    host_q: Vec<VecDeque<Box<Packet>>>,
    host_q_bytes: Vec<u64>,
    /// Per-destination-rack VOQs.
    voqs: Vec<VecDeque<QueuedPkt>>,
    voq_bytes: Vec<u64>,
    /// Control-packet queue (always packet network, ahead of data).
    ctrl_q: VecDeque<Box<Packet>>,
    /// Round-robin pointer for uplink VOQ service.
    rr: usize,
    /// Packets dropped for lack of a route (diagnostics).
    pub no_route: u64,
}

impl VoqTor {
    /// Create a ToR.
    pub fn new(cfg: VoqTorConfig) -> Self {
        let n_tors = cfg.schedule.n_tors;
        if let Some(g) = &cfg.voq_gauge {
            g.borrow_mut().resize(n_tors, 0);
        }
        VoqTor {
            host_q: (0..cfg.n_hosts).map(|_| VecDeque::new()).collect(),
            host_q_bytes: vec![0; cfg.n_hosts],
            voqs: (0..n_tors).map(|_| VecDeque::new()).collect(),
            voq_bytes: vec![0; n_tors],
            ctrl_q: VecDeque::new(),
            rr: 0,
            no_route: 0,
            cfg,
        }
    }

    /// Current VOQ occupancy toward rack `d` in bytes.
    pub fn voq_bytes(&self, d: usize) -> u64 {
        self.voq_bytes[d]
    }

    fn rack_of(&self, node: NodeId) -> Option<usize> {
        let r = *self.cfg.rack_of_node.get(node.index())?;
        (r != u16::MAX).then_some(r as usize)
    }

    fn is_control(pkt: &Packet) -> bool {
        matches!(
            pkt.kind,
            PacketKind::Ack(_) | PacketKind::HomaGrant(_) | PacketKind::Pfc { .. }
        )
    }

    fn set_gauge(&self, d: usize) {
        if let Some(g) = &self.cfg.voq_gauge {
            g.borrow_mut()[d] = self.voq_bytes[d];
        }
    }

    /// Is VOQ `d` currently held for prebuffering? (Only outside its day.)
    fn prebuffer_hold(&self, d: usize, now: Tick) -> bool {
        if self.cfg.prebuffer.is_zero() {
            return false;
        }
        let next = self.cfg.schedule.next_day_start(self.cfg.tor_index, d, now);
        next.saturating_sub(now) <= self.cfg.prebuffer
    }

    /// May VOQ `d` drain over the packet network right now?
    fn uplink_eligible(&self, d: usize, now: Tick) -> bool {
        d != self.cfg.tor_index
            && !self.cfg.schedule.circuit_up(self.cfg.tor_index, d, now)
            && !self.prebuffer_hold(d, now)
    }

    fn record_latency(&self, enq: Tick, now: Tick) {
        if let Some(sink) = &self.cfg.latency_sink {
            sink.borrow_mut()
                .push(now.saturating_sub(enq).as_secs_f64());
        }
    }

    fn pump_host(&mut self, port: usize, ctx: &mut CustomCtx<'_>) {
        if ctx.ports[port].busy {
            return;
        }
        if let Some(pkt) = self.host_q[port].pop_front() {
            self.host_q_bytes[port] -= pkt.size as u64;
            let qlen = self.host_q_bytes[port];
            ctx.start_tx(PortId(port as u16), pkt, Some(qlen));
        }
    }

    fn pump_circuit(&mut self, ctx: &mut CustomCtx<'_>) {
        let cport = self.cfg.circuit_port();
        if ctx.ports[cport].busy {
            return;
        }
        let p = self.cfg.schedule.at(ctx.now);
        if !p.in_day {
            return;
        }
        let d = self.cfg.schedule.peer_of(self.cfg.tor_index, p.matching);
        let Some(front) = self.voqs[d].front() else {
            return;
        };
        // Guard time: the packet must fully serialize before the night.
        let ser = ctx.ports[cport].bandwidth.tx_time(front.pkt.size as u64);
        if ctx.now + ser > p.phase_end {
            return;
        }
        let QueuedPkt { pkt, enqueued } = self.voqs[d].pop_front().expect("front checked");
        self.voq_bytes[d] -= pkt.size as u64;
        self.set_gauge(d);
        self.record_latency(enqueued, ctx.now);
        let qlen = self.voq_bytes[d];
        ctx.start_tx(PortId(cport as u16), pkt, Some(qlen));
    }

    fn pump_uplink(&mut self, ctx: &mut CustomCtx<'_>) {
        let uport = self.cfg.uplink_port();
        if ctx.ports[uport].busy {
            return;
        }
        // Control first.
        if let Some(pkt) = self.ctrl_q.pop_front() {
            ctx.start_tx(PortId(uport as u16), pkt, None);
            return;
        }
        // Round-robin over eligible VOQs.
        let n = self.voqs.len();
        for i in 0..n {
            let d = (self.rr + i) % n;
            if self.voqs[d].is_empty() || !self.uplink_eligible(d, ctx.now) {
                continue;
            }
            let QueuedPkt { pkt, enqueued } = self.voqs[d].pop_front().expect("nonempty");
            self.voq_bytes[d] -= pkt.size as u64;
            self.set_gauge(d);
            self.record_latency(enqueued, ctx.now);
            let qlen = self.voq_bytes[d];
            self.rr = (d + 1) % n;
            ctx.start_tx(PortId(uport as u16), pkt, Some(qlen));
            return;
        }
    }

    fn arm_phase_timer(&self, ctx: &mut CustomCtx<'_>) {
        let p = self.cfg.schedule.at(ctx.now);
        // Wake just after the boundary so `at()` lands in the new phase.
        ctx.set_timer(p.phase_end + Tick::from_nanos(1), 0);
    }
}

impl CustomSwitch for VoqTor {
    fn on_start(&mut self, ctx: &mut CustomCtx<'_>) {
        self.arm_phase_timer(ctx);
    }

    fn on_packet(&mut self, _port: PortId, pkt: Box<Packet>, ctx: &mut CustomCtx<'_>) {
        let Some(dst_rack) = self.rack_of(pkt.dst) else {
            self.no_route += 1;
            ctx.drop_packet(pkt);
            return;
        };
        if dst_rack == self.cfg.tor_index {
            // Local delivery.
            let port = self.cfg.local_port_of[pkt.dst.index()] as usize;
            self.host_q_bytes[port] += pkt.size as u64;
            self.host_q[port].push_back(pkt);
            self.pump_host(port, ctx);
            return;
        }
        if Self::is_control(&pkt) {
            self.ctrl_q.push_back(pkt);
            self.pump_uplink(ctx);
            return;
        }
        self.voq_bytes[dst_rack] += pkt.size as u64;
        self.voqs[dst_rack].push_back(QueuedPkt {
            pkt,
            enqueued: ctx.now,
        });
        self.set_gauge(dst_rack);
        self.pump_circuit(ctx);
        self.pump_uplink(ctx);
    }

    fn on_tx_done(&mut self, port: PortId, ctx: &mut CustomCtx<'_>) {
        let p = port.index();
        if p < self.cfg.n_hosts {
            self.pump_host(p, ctx);
        } else if p == self.cfg.uplink_port() {
            self.pump_uplink(ctx);
        } else {
            self.pump_circuit(ctx);
        }
    }

    fn on_timer(&mut self, _key: u64, ctx: &mut CustomCtx<'_>) {
        // Phase boundary: day/night flipped, eligibility changed.
        self.pump_circuit(ctx);
        self.pump_uplink(ctx);
        self.arm_phase_timer(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_sim::{CustomAction, FlowId, PortView};
    use powertcp_core::Bandwidth;

    /// Two-rack world: hosts 10, 11 in rack 0 (ports 0, 1), hosts 20, 21
    /// in rack 1.
    fn cfg(prebuffer: Tick) -> VoqTorConfig {
        let mut rack_of_node = vec![u16::MAX; 32];
        let mut local_port_of = vec![u16::MAX; 32];
        rack_of_node[10] = 0;
        rack_of_node[11] = 0;
        rack_of_node[20] = 1;
        rack_of_node[21] = 1;
        local_port_of[10] = 0;
        local_port_of[11] = 1;
        local_port_of[20] = 0;
        local_port_of[21] = 1;
        VoqTorConfig {
            tor_index: 0,
            n_hosts: 2,
            schedule: RotorSchedule {
                n_tors: 4,
                day: Tick::from_micros(225),
                night: Tick::from_micros(20),
            },
            prebuffer,
            rack_of_node,
            local_port_of,
            voq_gauge: None,
            latency_sink: None,
        }
    }

    fn views() -> Vec<PortView> {
        // 2 host ports (25G) + uplink (25G) + circuit (100G).
        vec![
            PortView {
                bandwidth: Bandwidth::gbps(25),
                delay: Tick::from_micros(1),
                busy: false,
                peer: NodeId(10),
            },
            PortView {
                bandwidth: Bandwidth::gbps(25),
                delay: Tick::from_micros(1),
                busy: false,
                peer: NodeId(11),
            },
            PortView {
                bandwidth: Bandwidth::gbps(25),
                delay: Tick::from_micros(1),
                busy: false,
                peer: NodeId(5),
            },
            PortView {
                bandwidth: Bandwidth::gbps(100),
                delay: Tick::from_micros(1),
                busy: false,
                peer: NodeId(6),
            },
        ]
    }

    fn data_to(dst: u32) -> Box<Packet> {
        Box::new(Packet::data(
            FlowId(1),
            NodeId(10),
            NodeId(dst),
            0,
            1000,
            false,
            Tick::ZERO,
        ))
    }

    #[test]
    fn local_packets_take_host_port() {
        let mut tor = VoqTor::new(cfg(Tick::ZERO));
        let v = views();
        let mut actions = Vec::new();
        let mut ctx = CustomCtx::new(Tick::from_micros(1), NodeId(0), &v, &mut actions);
        tor.on_packet(PortId(2), data_to(11), &mut ctx);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            CustomAction::StartTx { port, .. } => assert_eq!(*port, PortId(1)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn remote_data_uses_circuit_during_matching_day() {
        let mut tor = VoqTor::new(cfg(Tick::ZERO));
        let v = views();
        let mut actions = Vec::new();
        // Matching 0 (t=1us): rack 0 -> rack 1 circuit is up.
        let mut ctx = CustomCtx::new(Tick::from_micros(1), NodeId(0), &v, &mut actions);
        tor.on_packet(PortId(0), data_to(20), &mut ctx);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            CustomAction::StartTx { port, int_qlen, .. } => {
                assert_eq!(*port, PortId(3), "circuit port");
                assert_eq!(*int_qlen, Some(0), "VOQ empty after dequeue");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn remote_data_uses_uplink_when_circuit_elsewhere() {
        let mut tor = VoqTor::new(cfg(Tick::ZERO));
        let v = views();
        let mut actions = Vec::new();
        // Matching 0 serves rack 1; traffic to rack 2 must take the uplink.
        let mut ctx = CustomCtx::new(Tick::from_micros(1), NodeId(0), &v, &mut actions);
        tor.on_packet(PortId(0), data_to(99), &mut ctx); // unknown host
        assert_eq!(tor.no_route, 1);
        actions.clear();
        // host 21 is rack 1... make rack 2 traffic: extend the map.
        let mut c = cfg(Tick::ZERO);
        c.rack_of_node.resize(40, u16::MAX);
        c.local_port_of.resize(40, u16::MAX);
        c.rack_of_node[30] = 2;
        c.local_port_of[30] = 0;
        let mut tor = VoqTor::new(c);
        let mut ctx = CustomCtx::new(Tick::from_micros(1), NodeId(0), &v, &mut actions);
        tor.on_packet(PortId(0), data_to(30), &mut ctx);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            CustomAction::StartTx { port, .. } => assert_eq!(*port, PortId(2), "uplink"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn acks_never_wait_for_circuit() {
        let mut tor = VoqTor::new(cfg(Tick::from_micros(1000)));
        let v = views();
        let mut actions = Vec::new();
        let data = data_to(20);
        let ack = Box::new(Packet::ack_for(&data, 1000, false, Tick::from_micros(1)));
        // ACK towards rack 1 (dst host 10 is... ack_for swaps src/dst:
        // src=20 dst=10 → local!). Build a remote ack instead:
        let data_rev = Box::new(Packet::data(
            FlowId(2),
            NodeId(20),
            NodeId(10),
            0,
            1000,
            false,
            Tick::ZERO,
        ));
        let remote_ack = Box::new(Packet::ack_for(
            &data_rev,
            1000,
            false,
            Tick::from_micros(1),
        ));
        drop(ack);
        // t=230us: night, and prebuffer=1000us would hold ALL data.
        let mut ctx = CustomCtx::new(Tick::from_micros(230), NodeId(0), &v, &mut actions);
        tor.on_packet(PortId(0), remote_ack, &mut ctx);
        assert_eq!(actions.len(), 1);
        match &actions[0] {
            CustomAction::StartTx { port, .. } => assert_eq!(*port, PortId(2), "uplink"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn prebuffer_holds_data_near_day_start() {
        // prebuffer = 50us; rack-1 day starts at t=0 each week (matching
        // 0). At t = 940us (next rack-1 day at 980us per 4-ToR schedule:
        // week = 3*245 = 735us, so next start = 735us... recompute: the
        // me->1 matching is m=0, so day starts at k*735us. At t=700us the
        // next start is 735us, 35us away < 50us -> held.
        let mut tor = VoqTor::new(cfg(Tick::from_micros(50)));
        let v = views();
        let mut actions = Vec::new();
        let mut ctx = CustomCtx::new(Tick::from_micros(700), NodeId(0), &v, &mut actions);
        tor.on_packet(PortId(0), data_to(20), &mut ctx);
        assert!(
            actions.is_empty(),
            "VOQ must hold during prebuffer window: {actions:?}"
        );
        assert_eq!(tor.voq_bytes(1), 1000);
        // Same instant without prebuffering: drains on the uplink.
        let mut tor = VoqTor::new(cfg(Tick::ZERO));
        let mut ctx = CustomCtx::new(Tick::from_micros(700), NodeId(0), &v, &mut actions);
        tor.on_packet(PortId(0), data_to(20), &mut ctx);
        assert_eq!(actions.len(), 1);
    }

    #[test]
    fn guard_time_blocks_straddling_transmissions() {
        let mut tor = VoqTor::new(cfg(Tick::ZERO));
        let v = views();
        let mut actions = Vec::new();
        // 1000B at 100G = 80ns. At day_end - 40ns the packet cannot fit.
        let t = Tick::from_micros(225) - Tick::from_nanos(40);
        let mut ctx = CustomCtx::new(t, NodeId(0), &v, &mut actions);
        tor.on_packet(PortId(0), data_to(20), &mut ctx);
        // Not on the circuit; must fall through to the uplink instead
        // (circuit is "up" so uplink is ineligible -> queued).
        assert!(
            actions.is_empty(),
            "must neither straddle night nor bypass exclusivity"
        );
        assert_eq!(tor.voq_bytes(1), 1000);
    }

    #[test]
    fn gauge_tracks_voq_bytes() {
        let gauge: VoqGauge = Rc::new(RefCell::new(Vec::new()));
        let mut c = cfg(Tick::from_micros(50));
        c.voq_gauge = Some(gauge.clone());
        let mut tor = VoqTor::new(c);
        let v = views();
        let mut actions = Vec::new();
        // Held by prebuffer (t=700us as above) so occupancy is visible.
        let mut ctx = CustomCtx::new(Tick::from_micros(700), NodeId(0), &v, &mut actions);
        tor.on_packet(PortId(0), data_to(20), &mut ctx);
        assert_eq!(gauge.borrow()[1], 1000);
    }
}
