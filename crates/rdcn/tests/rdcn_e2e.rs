//! End-to-end RDCN tests: real transports over the rotor-scheduled
//! circuit + packet hybrid fabric (the §5 case-study substrate).

use cc_baselines::{ReTcp, ReTcpConfig};
use dcn_sim::{Endpoint, FlowId, NodeId, Simulator};
use dcn_transport::{FlowSpec, MetricsHub, SharedMetrics, TransportConfig, TransportHost};
use powertcp_core::{CongestionControl, PowerTcp, PowerTcpConfig, Tick};
use rdcn::{build_rdcn, CircuitAwareHost, Rdcn, RdcnConfig};

/// Build a small RDCN where every host of rack 0 sends a long flow to its
/// counterpart in rack 1.
fn rack_pair_setup(cfg: RdcnConfig, flow_bytes: u64, use_retcp: bool) -> (Rdcn, SharedMetrics) {
    let metrics = MetricsHub::new_shared();
    let schedule = cfg.schedule;
    let h = cfg.hosts_per_tor;
    let base_rtt = cfg.base_rtt();
    let circuit_bw = cfg.circuit_bw;
    let m2 = metrics.clone();
    let mut mk = move |id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        let tcfg = TransportConfig {
            base_rtt,
            rto: Tick::from_micros(2000),
            expected_flows: 1,
            ..TransportConfig::default()
        };
        let make_cc: dcn_transport::CcFactory = if use_retcp {
            Box::new(move |_f, nic_bw| {
                let ctx = tcfg.cc_context(nic_bw);
                Box::new(ReTcp::new(ReTcpConfig::default(), ctx)) as Box<dyn CongestionControl>
            })
        } else {
            Box::new(move |_f, nic_bw| {
                let ctx = tcfg.cc_context(nic_bw);
                Box::new(PowerTcp::new(PowerTcpConfig::default(), ctx))
                    as Box<dyn CongestionControl>
            })
        };
        let mut host = TransportHost::new(tcfg, m2.clone(), make_cc);
        let rack = idx / h;
        let slot = idx % h;
        if rack == 0 {
            // Peer host in rack 1 has host index h + slot; its NodeId is
            // derived from the builder's id plan (2 + r*(1+h) + 1 + j).
            let dst = NodeId((2 + (1 + h) + 1 + slot) as u32);
            host.add_flow(FlowSpec {
                id: FlowId(idx as u64 + 1),
                src: id,
                dst,
                size_bytes: flow_bytes,
                start: Tick::ZERO,
            });
        }
        if rack == 0 {
            Box::new(CircuitAwareHost::new(host, schedule, 0, 1, circuit_bw))
        } else {
            Box::new(host)
        }
    };
    let r = build_rdcn(cfg, &mut mk);
    (r, metrics)
}

#[test]
fn flows_complete_over_hybrid_fabric() {
    let cfg = RdcnConfig::small();
    // 2 hosts per rack, 500 KB each: needs both packet and circuit phases.
    let (r, metrics) = rack_pair_setup(cfg, 500_000, false);
    let mut sim = Simulator::new(r.net);
    sim.run_until(Tick::from_millis(8));
    let m = metrics.borrow();
    assert_eq!(m.completion_ratio(), (2, 2), "flows must finish");
}

#[test]
fn circuit_carries_bulk_of_bytes_during_days() {
    let cfg = RdcnConfig::small();
    let (r, _metrics) = rack_pair_setup(cfg, 2_000_000, false);
    let tors = r.tors.clone();
    let hpt = r.cfg.hosts_per_tor;
    let mut sim = Simulator::new(r.net);
    sim.run_until(Tick::from_millis(6));
    // Inspect ToR 0 port counters.
    let dcn_sim::Node::Custom(c) = sim.net.node(tors[0]) else {
        panic!()
    };
    let circuit_tx = c.ports[hpt + 1].tx_bytes;
    let uplink_tx = c.ports[hpt].tx_bytes;
    assert!(
        circuit_tx > uplink_tx,
        "circuit (100G, day 0 immediately up) should carry more than the \
         25G uplink: circuit={circuit_tx} uplink={uplink_tx}"
    );
    assert!(circuit_tx > 0 && uplink_tx > 0, "both paths exercised");
}

#[test]
fn retcp_prebuffering_builds_then_blasts_voq() {
    let mut cfg = RdcnConfig::small();
    cfg.prebuffer = Tick::from_micros(150);
    let (r, metrics) = rack_pair_setup(cfg, 1_500_000, true);
    let gauge = r.voq_gauges[0].clone();
    let sinks = r.latency_sinks[0].clone();
    let schedule = r.cfg.schedule;
    let mut sim = Simulator::new(r.net);
    // Sample the VOQ gauge during the prebuffer window before the second
    // rack-1 day (week = 735us, so prebuffer window is [585, 735)us).
    let mut held_max = 0u64;
    let g2 = gauge.clone();
    let probe = std::rc::Rc::new(std::cell::RefCell::new(Vec::<(Tick, u64)>::new()));
    let p2 = probe.clone();
    sim.add_tracer(Tick::from_micros(5), move |_net, now| {
        let v = g2.borrow().get(1).copied().unwrap_or(0);
        p2.borrow_mut().push((now, v));
    });
    sim.run_until(Tick::from_millis(3));
    let week = schedule.week();
    let pre_lo = week - Tick::from_micros(150);
    for &(t, v) in probe.borrow().iter() {
        if t >= pre_lo && t < week {
            held_max = held_max.max(v);
        }
    }
    assert!(
        held_max > 50_000,
        "prebuffering must accumulate a VOQ before the day (got {held_max}B)"
    );
    // Latency samples include long waits (held packets) — the reTCP cost.
    let lat = sinks.borrow();
    let max_wait = lat.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max_wait > 100e-6,
        "prebuffered packets wait ~the prebuffer window (max {max_wait})"
    );
    let m = metrics.borrow();
    assert_eq!(m.completion_ratio().0, 2, "flows still complete");
}

#[test]
fn powertcp_keeps_voq_short_without_losing_completion() {
    let cfg = RdcnConfig::small();
    let (r, metrics) = rack_pair_setup(cfg, 1_500_000, false);
    let sink = r.latency_sinks[0].clone();
    let mut sim = Simulator::new(r.net);
    sim.run_until(Tick::from_millis(6));
    let m = metrics.borrow();
    assert_eq!(m.completion_ratio().0, 2);
    // Tail VOQ latency without prebuffering stays far below reTCP's.
    let mut lat: Vec<f64> = sink.borrow().clone();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if let Some(&max) = lat.last() {
        assert!(
            max < 300e-6,
            "PowerTCP VOQ tail wait should be bounded by schedule, got {max}"
        );
    }
}

#[test]
fn deterministic_rdcn_replay() {
    let run = || {
        let (r, metrics) = rack_pair_setup(RdcnConfig::small(), 800_000, false);
        let mut sim = Simulator::new(r.net);
        sim.run_until(Tick::from_millis(5));
        let m = metrics.borrow();
        let mut v: Vec<(u64, Option<Tick>)> =
            m.records().map(|r| (r.spec.id.0, r.completed)).collect();
        v.sort();
        v
    };
    assert_eq!(run(), run());
}
