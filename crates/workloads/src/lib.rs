//! # dcn-workloads
//!
//! Traffic generation for the PowerTCP evaluation (§4.1): the web-search
//! flow-size distribution, load-targeted Poisson flow arrivals over a host
//! map, and the synthetic distributed-file-request incast pattern, plus
//! the paper's flow-size classification buckets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod gen;

pub use dist::{CdfPoint, SizeCdf};
pub use gen::{
    incast_flows, poisson_flows, size_class, HostMap, IncastConfig, PoissonConfig, SizeClass,
};
