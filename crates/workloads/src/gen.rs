//! Workload generators: load-targeted Poisson flow arrivals and the
//! synthetic incast ("distributed file request") pattern of §4.1.

use crate::dist::SizeCdf;
use dcn_sim::{FlowId, NodeId};
use dcn_transport::FlowSpec;
use powertcp_core::{Bandwidth, Tick};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Host placement information the generators need: which rack each host
/// is in (index into `hosts` == host index used by topology builders).
#[derive(Clone, Debug)]
pub struct HostMap {
    /// Host node ids, in host-index order.
    pub hosts: Vec<NodeId>,
    /// Rack (ToR index) of each host.
    pub rack_of: Vec<usize>,
}

impl HostMap {
    /// Build from a fat-tree.
    pub fn from_fat_tree(ft: &dcn_sim::FatTree) -> Self {
        HostMap {
            hosts: ft.hosts.clone(),
            rack_of: (0..ft.hosts.len()).map(|i| ft.rack_of(i)).collect(),
        }
    }

    /// Number of racks.
    pub fn num_racks(&self) -> usize {
        self.rack_of.iter().copied().max().map_or(0, |m| m + 1)
    }
}

/// Configuration for Poisson background traffic at a target load.
#[derive(Clone, Debug)]
pub struct PoissonConfig {
    /// Target average load on the ToR uplinks, 0.0–1.0 (the paper sweeps
    /// 20%–95%).
    pub load: f64,
    /// Aggregate ToR uplink capacity of the whole fabric (n_tors ×
    /// per-ToR uplink bandwidth); offered inter-rack traffic targets
    /// `load × this`.
    pub fabric_uplink_capacity: Bandwidth,
    /// Flow-size distribution.
    pub sizes: SizeCdf,
    /// Generation horizon: flows start in [0, horizon).
    pub horizon: Tick,
    /// Only inter-rack pairs (traffic that actually crosses uplinks).
    pub inter_rack_only: bool,
    /// RNG seed.
    pub seed: u64,
    /// First flow id to assign (generators compose).
    pub first_flow_id: u64,
}

/// Generate Poisson flow arrivals hitting the target load.
pub fn poisson_flows(cfg: &PoissonConfig, map: &HostMap) -> Vec<FlowSpec> {
    assert!(
        cfg.load > 0.0 && cfg.load < 1.5,
        "implausible load {}",
        cfg.load
    );
    assert!(map.hosts.len() >= 2);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mean_size = cfg.sizes.mean();
    let bytes_per_sec = cfg.fabric_uplink_capacity.bytes_per_sec() * cfg.load;
    let flows_per_sec = bytes_per_sec / mean_size;
    let mut out = Vec::new();
    let mut t = 0.0f64;
    let horizon = cfg.horizon.as_secs_f64();
    let mut id = cfg.first_flow_id;
    loop {
        // Exponential inter-arrival via inverse transform.
        let u: f64 = rng.random::<f64>().max(1e-12);
        t += -u.ln() / flows_per_sec;
        if t >= horizon {
            break;
        }
        let src_idx = rng.random_range(0..map.hosts.len());
        let dst_idx = loop {
            let d = rng.random_range(0..map.hosts.len());
            if d == src_idx {
                continue;
            }
            if cfg.inter_rack_only && map.rack_of[d] == map.rack_of[src_idx] {
                continue;
            }
            break d;
        };
        out.push(FlowSpec {
            id: FlowId(id),
            src: map.hosts[src_idx],
            dst: map.hosts[dst_idx],
            size_bytes: cfg.sizes.sample(&mut rng).max(1),
            start: Tick::from_secs_f64(t),
        });
        id += 1;
    }
    out
}

/// Configuration for the synthetic incast workload (§4.1: "each server
/// requests a file from a set of servers chosen uniformly at random from a
/// different rack; all servers which receive the request respond at the
/// same time").
#[derive(Clone, Debug)]
pub struct IncastConfig {
    /// Requests per second across the fabric (paper Figure 7c/d sweeps
    /// 1–16).
    pub request_rate_per_sec: f64,
    /// Total response size per request (paper Figure 7e/f sweeps 1–8 MB).
    pub request_size_bytes: u64,
    /// Fan-in: number of responding servers per request.
    pub fan_in: usize,
    /// Generation horizon.
    pub horizon: Tick,
    /// RNG seed.
    pub seed: u64,
    /// First flow id to assign.
    pub first_flow_id: u64,
    /// Use periodic request arrivals instead of Poisson (deterministic
    /// incast pressure; the paper's generator fires at a fixed rate).
    pub periodic: bool,
}

/// Generate incast responder flows.
pub fn incast_flows(cfg: &IncastConfig, map: &HostMap) -> Vec<FlowSpec> {
    assert!(cfg.fan_in >= 1);
    assert!(map.num_racks() >= 2, "incast needs at least two racks");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = Vec::new();
    let mut id = cfg.first_flow_id;
    let horizon = cfg.horizon.as_secs_f64();
    let per_flow = (cfg.request_size_bytes / cfg.fan_in as u64).max(1);
    let mut t = 0.0f64;
    loop {
        t += if cfg.periodic {
            1.0 / cfg.request_rate_per_sec
        } else {
            let u: f64 = rng.random::<f64>().max(1e-12);
            -u.ln() / cfg.request_rate_per_sec
        };
        if t >= horizon {
            break;
        }
        let requester = rng.random_range(0..map.hosts.len());
        let req_rack = map.rack_of[requester];
        // Responders: uniform from hosts in other racks, distinct.
        let candidates: Vec<usize> = (0..map.hosts.len())
            .filter(|&h| map.rack_of[h] != req_rack)
            .collect();
        assert!(candidates.len() >= cfg.fan_in, "not enough remote hosts");
        let mut chosen = Vec::with_capacity(cfg.fan_in);
        while chosen.len() < cfg.fan_in {
            let c = candidates[rng.random_range(0..candidates.len())];
            if !chosen.contains(&c) {
                chosen.push(c);
            }
        }
        let start = Tick::from_secs_f64(t);
        for c in chosen {
            out.push(FlowSpec {
                id: FlowId(id),
                src: map.hosts[c],
                dst: map.hosts[requester],
                size_bytes: per_flow,
                start,
            });
            id += 1;
        }
    }
    out
}

/// Flow-size classes used throughout the paper's FCT figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SizeClass {
    /// < 10 KB ("short flows", Figure 6/7a).
    Short,
    /// 10 KB – 100 KB.
    SmallMedium,
    /// 100 KB – 1 MB ("medium", §4.2).
    Medium,
    /// ≥ 1 MB ("long flows", Figure 7b).
    Long,
}

/// Classify a flow size per the paper's buckets.
pub fn size_class(bytes: u64) -> SizeClass {
    if bytes < 10_000 {
        SizeClass::Short
    } else if bytes < 100_000 {
        SizeClass::SmallMedium
    } else if bytes < 1_000_000 {
        SizeClass::Medium
    } else {
        SizeClass::Long
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map_two_racks(hosts_per_rack: usize) -> HostMap {
        let n = hosts_per_rack * 2;
        HostMap {
            hosts: (0..n).map(|i| NodeId(i as u32)).collect(),
            rack_of: (0..n).map(|i| i / hosts_per_rack).collect(),
        }
    }

    #[test]
    fn poisson_load_targets_offered_bytes() {
        let map = map_two_racks(16);
        let cfg = PoissonConfig {
            load: 0.6,
            fabric_uplink_capacity: Bandwidth::gbps(400),
            sizes: SizeCdf::websearch(),
            horizon: Tick::from_millis(200),
            inter_rack_only: true,
            seed: 42,
            first_flow_id: 0,
        };
        let flows = poisson_flows(&cfg, &map);
        let total: u64 = flows.iter().map(|f| f.size_bytes).sum();
        let offered = total as f64 / 0.2; // bytes/sec
        let target = Bandwidth::gbps(400).bytes_per_sec() * 0.6;
        assert!(
            (offered - target).abs() / target < 0.15,
            "offered {offered:.3e} vs target {target:.3e}"
        );
    }

    #[test]
    fn poisson_inter_rack_only_respected() {
        let map = map_two_racks(8);
        let cfg = PoissonConfig {
            load: 0.4,
            fabric_uplink_capacity: Bandwidth::gbps(100),
            sizes: SizeCdf::websearch(),
            horizon: Tick::from_millis(50),
            inter_rack_only: true,
            seed: 1,
            first_flow_id: 0,
        };
        for f in poisson_flows(&cfg, &map) {
            let s = map.rack_of[f.src.0 as usize];
            let d = map.rack_of[f.dst.0 as usize];
            assert_ne!(s, d, "flow {f:?} is intra-rack");
        }
    }

    #[test]
    fn poisson_starts_sorted_within_horizon_and_unique_ids() {
        let map = map_two_racks(8);
        let cfg = PoissonConfig {
            load: 0.5,
            fabric_uplink_capacity: Bandwidth::gbps(200),
            sizes: SizeCdf::websearch(),
            horizon: Tick::from_millis(20),
            inter_rack_only: false,
            seed: 5,
            first_flow_id: 100,
        };
        let flows = poisson_flows(&cfg, &map);
        assert!(!flows.is_empty());
        assert!(flows.windows(2).all(|w| w[0].start <= w[1].start));
        assert!(flows.iter().all(|f| f.start < cfg.horizon));
        let mut ids: Vec<u64> = flows.iter().map(|f| f.id.0).collect();
        ids.dedup();
        assert_eq!(ids.len(), flows.len());
        assert_eq!(ids[0], 100);
    }

    #[test]
    fn incast_fan_in_and_rack_separation() {
        let map = map_two_racks(20);
        let cfg = IncastConfig {
            request_rate_per_sec: 1000.0,
            request_size_bytes: 2_000_000,
            fan_in: 8,
            horizon: Tick::from_millis(10),
            seed: 3,
            first_flow_id: 0,
            periodic: true,
        };
        let flows = incast_flows(&cfg, &map);
        // 10 requests (1/ms for 10ms) x 8 responders.
        assert_eq!(flows.len(), 9 * 8, "9 full periods fit below horizon");
        // Group by start time: each group has fan_in flows to one dst.
        for chunk in flows.chunks(8) {
            let dst = chunk[0].dst;
            assert!(chunk.iter().all(|f| f.dst == dst));
            assert!(chunk.iter().all(|f| f.size_bytes == 250_000));
            let dst_rack = map.rack_of[dst.0 as usize];
            for f in chunk {
                assert_ne!(map.rack_of[f.src.0 as usize], dst_rack);
            }
            // Responders distinct.
            let mut srcs: Vec<_> = chunk.iter().map(|f| f.src).collect();
            srcs.sort();
            srcs.dedup();
            assert_eq!(srcs.len(), 8);
        }
    }

    #[test]
    fn size_classes_match_paper_buckets() {
        assert_eq!(size_class(5_000), SizeClass::Short);
        assert_eq!(size_class(9_999), SizeClass::Short);
        assert_eq!(size_class(50_000), SizeClass::SmallMedium);
        assert_eq!(size_class(400_000), SizeClass::Medium);
        assert_eq!(size_class(30_000_000), SizeClass::Long);
    }

    #[test]
    fn generators_are_deterministic() {
        let map = map_two_racks(8);
        let cfg = PoissonConfig {
            load: 0.3,
            fabric_uplink_capacity: Bandwidth::gbps(100),
            sizes: SizeCdf::websearch(),
            horizon: Tick::from_millis(20),
            inter_rack_only: true,
            seed: 77,
            first_flow_id: 0,
        };
        assert_eq!(poisson_flows(&cfg, &map), poisson_flows(&cfg, &map));
    }
}
