//! Flow-size distributions.
//!
//! The paper generates traffic from the *web search* flow-size
//! distribution of the DCTCP paper (§4.1). The exact trace file is not
//! published in the paper; the embedded piecewise CDF below reproduces its
//! defining shape (documented in DESIGN.md): heavy-tailed, roughly half of
//! *flows* at or below ~10 KB while the overwhelming majority of *bytes*
//! come from multi-megabyte flows.

use rand::{Rng, RngExt};

/// A point (size_bytes, cumulative_probability) on a CDF.
pub type CdfPoint = (u64, f64);

/// Piecewise-linear flow-size CDF sampled by inverse transform.
#[derive(Clone, Debug)]
pub struct SizeCdf {
    points: Vec<CdfPoint>,
}

impl SizeCdf {
    /// Build from explicit points; must be sorted, start above probability
    /// 0 handling (first point's probability is the mass at or below its
    /// size), and end at probability 1.0.
    pub fn new(points: Vec<CdfPoint>) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        assert!(
            points
                .windows(2)
                .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1),
            "CDF points must be strictly increasing in size, non-decreasing in probability"
        );
        let last = points.last().unwrap();
        assert!(
            (last.1 - 1.0).abs() < 1e-9,
            "CDF must end at probability 1.0"
        );
        SizeCdf { points }
    }

    /// The web search distribution (DCTCP, Alizadeh et al. 2010) as used
    /// throughout the paper's evaluation. ~50% of flows ≤ 10 KB, ~95% of
    /// bytes from flows ≥ 1 MB, mean ≈ 1.3 MB.
    pub fn websearch() -> Self {
        SizeCdf::new(vec![
            (1_000, 0.00),
            (2_000, 0.10),
            (3_000, 0.20),
            (5_000, 0.30),
            (7_000, 0.40),
            (10_000, 0.50),
            (20_000, 0.58),
            (30_000, 0.63),
            (50_000, 0.68),
            (80_000, 0.72),
            (200_000, 0.76),
            (1_000_000, 0.82),
            (2_000_000, 0.88),
            (5_000_000, 0.93),
            (10_000_000, 0.96),
            (30_000_000, 1.00),
        ])
    }

    /// A Hadoop-style batch/shuffle distribution: the other half of the
    /// heavy-tailed datacenter mix ("It's Time to Replace TCP in the
    /// Datacenter" argues this regime is where transports diverge). As
    /// with [`Self::websearch`], the exact trace is not published; the
    /// embedded CDF reproduces its defining shape — half of flows are
    /// sub-kilobyte control messages while shuffle/sort transfers push
    /// the tail to ~100 MB and dominate the bytes (mean ≈ 6 MB).
    pub fn hadoop() -> Self {
        SizeCdf::new(vec![
            (200, 0.10),
            (500, 0.30),
            (1_000, 0.50),
            (10_000, 0.63),
            (100_000, 0.72),
            (1_000_000, 0.80),
            (10_000_000, 0.90),
            (100_000_000, 1.00),
        ])
    }

    /// The 50/50 websearch + Hadoop mixture used by the flow-engine
    /// datacenter-scale scenarios: each flow is drawn from one of the
    /// two distributions with equal probability. Built as the exact
    /// pointwise mixture CDF `F(x) = (Fw(x) + Fh(x)) / 2` on the union
    /// of both knot sets (both CDFs are piecewise linear, so the
    /// mixture is too and the union knots represent it exactly).
    pub fn websearch_hadoop() -> Self {
        Self::mix(&Self::websearch(), &Self::hadoop(), 0.5)
    }

    /// The mixture `w·a + (1-w)·b` as an exact piecewise-linear CDF.
    pub fn mix(a: &SizeCdf, b: &SizeCdf, w: f64) -> Self {
        assert!((0.0..=1.0).contains(&w), "mixture weight must be in [0,1]");
        let mut sizes: Vec<u64> = a.points.iter().chain(&b.points).map(|&(s, _)| s).collect();
        sizes.sort_unstable();
        sizes.dedup();
        let points = sizes
            .into_iter()
            .map(|s| (s, w * a.prob_at(s) + (1.0 - w) * b.prob_at(s)))
            .collect();
        SizeCdf::new(points)
    }

    /// The cumulative probability at `size` (linear interpolation; the
    /// first point carries its mass, sizes beyond the last are 1.0).
    pub fn prob_at(&self, size: u64) -> f64 {
        let first = self.points[0];
        if size <= first.0 {
            // The first point's probability is the mass at or below its
            // size; below it there is nothing.
            return if size == first.0 { first.1 } else { 0.0 };
        }
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if size <= s1 {
                let frac = (size - s0) as f64 / (s1 - s0) as f64;
                return p0 + (p1 - p0) * frac;
            }
        }
        1.0
    }

    /// Fixed-size "distribution" (useful for controlled experiments).
    pub fn fixed(size: u64) -> Self {
        SizeCdf::new(vec![
            (size.saturating_sub(1).max(1), 0.0),
            (size.max(2), 1.0),
        ])
    }

    /// Inverse-transform sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        self.quantile(u)
    }

    /// The size at cumulative probability `u` (linear interpolation).
    pub fn quantile(&self, u: f64) -> u64 {
        let u = u.clamp(0.0, 1.0);
        let first = self.points[0];
        if u <= first.1 {
            return first.0;
        }
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if u <= p1 {
                if p1 <= p0 {
                    return s1;
                }
                let frac = (u - p0) / (p1 - p0);
                return s0 + ((s1 - s0) as f64 * frac).round() as u64;
            }
        }
        self.points.last().unwrap().0
    }

    /// Mean flow size implied by the piecewise-linear CDF.
    pub fn mean(&self) -> f64 {
        // E[X] = Σ segment probability × segment midpoint (linear pieces),
        // plus the initial mass at the first point.
        let mut mean = self.points[0].0 as f64 * self.points[0].1;
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            mean += (p1 - p0) * (s0 + s1) as f64 / 2.0;
        }
        mean
    }

    /// CDF points (for reporting).
    pub fn points(&self) -> &[CdfPoint] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn websearch_shape() {
        let d = SizeCdf::websearch();
        // Median at or below 10KB-ish.
        assert!(d.quantile(0.5) <= 10_000);
        // Tail is tens of MB.
        assert_eq!(d.quantile(1.0), 30_000_000);
        // Mean dominated by the tail: ~1.3 MB.
        let m = d.mean();
        assert!(m > 1_000_000.0 && m < 2_000_000.0, "mean={m}");
    }

    #[test]
    fn sampling_matches_analytic_mean() {
        let d = SizeCdf::websearch();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum();
        let emp = sum / n as f64;
        let ana = d.mean();
        assert!(
            (emp - ana).abs() / ana < 0.05,
            "empirical {emp} vs analytic {ana}"
        );
    }

    #[test]
    fn short_flow_fraction_is_about_half() {
        let d = SizeCdf::websearch();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let short = (0..n).filter(|_| d.sample(&mut rng) <= 10_000).count();
        let frac = short as f64 / n as f64;
        assert!(frac > 0.45 && frac < 0.60, "short fraction {frac}");
    }

    #[test]
    fn bytes_dominated_by_large_flows() {
        let d = SizeCdf::websearch();
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<u64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let total: u64 = samples.iter().sum();
        let big: u64 = samples.iter().filter(|&&s| s >= 1_000_000).sum();
        assert!(
            big as f64 / total as f64 > 0.7,
            "large flows carry most bytes"
        );
    }

    #[test]
    fn fixed_returns_constant() {
        let d = SizeCdf::fixed(5000);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = d.sample(&mut rng);
            assert!((4999..=5000).contains(&s));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let d = SizeCdf::websearch();
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..100).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(3);
            (0..100).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn hadoop_shape() {
        let d = SizeCdf::hadoop();
        // Half of flows are sub-kilobyte control messages.
        assert!(d.quantile(0.5) <= 1_000);
        // Shuffle tail reaches 100 MB.
        assert_eq!(d.quantile(1.0), 100_000_000);
        let m = d.mean();
        assert!(m > 4_000_000.0 && m < 9_000_000.0, "mean={m}");
    }

    #[test]
    fn prob_at_inverts_quantile_on_knots() {
        let d = SizeCdf::websearch();
        for &(s, p) in d.points() {
            assert!((d.prob_at(s) - p).abs() < 1e-12);
        }
        assert_eq!(d.prob_at(500), 0.0, "below the first knot");
        assert_eq!(d.prob_at(u64::MAX), 1.0, "beyond the last knot");
    }

    #[test]
    fn mixture_is_the_exact_average_of_both_cdfs() {
        let wsh = SizeCdf::websearch_hadoop();
        let (w, h) = (SizeCdf::websearch(), SizeCdf::hadoop());
        // Spot-check across the whole support, including between knots:
        // a piecewise-linear mixture on union knots must agree exactly.
        for s in [200, 1_000, 4_321, 10_000, 123_456, 5_000_000, 100_000_000] {
            let expect = 0.5 * w.prob_at(s) + 0.5 * h.prob_at(s);
            assert!(
                (wsh.prob_at(s) - expect).abs() < 1e-12,
                "size {s}: {} vs {expect}",
                wsh.prob_at(s)
            );
        }
        // Mean follows by linearity.
        let mm = wsh.mean();
        let expect = 0.5 * w.mean() + 0.5 * h.mean();
        assert!((mm - expect).abs() / expect < 1e-6, "{mm} vs {expect}");
    }

    #[test]
    #[should_panic]
    fn unsorted_points_rejected() {
        SizeCdf::new(vec![(10, 0.0), (5, 1.0)]);
    }

    #[test]
    #[should_panic]
    fn cdf_must_reach_one() {
        SizeCdf::new(vec![(10, 0.0), (20, 0.9)]);
    }
}
