//! Quickstart: two PowerTCP flows over a dumbbell bottleneck.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 2-pair dumbbell (25 G hosts, 25 G bottleneck), runs two 2 MB
//! PowerTCP flows through the full stack (INT-appending switches, windowed
//! go-back-N transport), and prints flow completion times plus bottleneck
//! queue statistics.

use powertcp::prelude::*;

fn main() {
    // Shared metrics hub: endpoints report completions here.
    let metrics = MetricsHub::new_shared();

    // Transport/CC parameters: τ is the topology's max base RTT.
    let tcfg = TransportConfig {
        base_rtt: Tick::from_micros(12),
        expected_flows: 2,
        ..TransportConfig::default()
    };

    // Endpoint factory: senders are hosts 0..1 (node ids 2..3 — the two
    // switches come first), receivers 4..5.
    let m2 = metrics.clone();
    let mut mk = move |_id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        let make_cc = {
            let tcfg = tcfg;
            move |_flow: FlowId, nic_bw: Bandwidth| -> Box<dyn CongestionControl> {
                Box::new(PowerTcp::new(
                    PowerTcpConfig::default(),
                    tcfg.cc_context(nic_bw),
                ))
            }
        };
        let mut host = TransportHost::new(tcfg, m2.clone(), Box::new(make_cc));
        if idx < 2 {
            host.add_flow(FlowSpec {
                id: FlowId(idx as u64 + 1),
                src: NodeId(2 + idx as u32),
                dst: NodeId(4 + idx as u32),
                size_bytes: 2_000_000,
                start: Tick::from_micros(idx as u64 * 50),
            });
        }
        Box::new(host)
    };

    let d = build_dumbbell(DumbbellConfig::default(), &mut mk);
    let bottleneck = (d.left, d.bottleneck_port);

    let mut sim = Simulator::new(d.net);
    let queue = series();
    sim.add_tracer(
        Tick::from_micros(10),
        queue_tracer(bottleneck.0, bottleneck.1, queue.clone()),
    );
    sim.run_until(Tick::from_millis(10));

    println!("PowerTCP quickstart — 2 x 2MB flows over a shared 25G bottleneck\n");
    let m = metrics.borrow();
    for rec in m.records() {
        let fct = rec.fct().expect("flow finished");
        let s = slowdown(
            fct,
            rec.spec.size_bytes,
            Tick::from_micros(12),
            Bandwidth::gbps(25),
        );
        println!(
            "flow {:?}: {} bytes, FCT {}, slowdown {:.2}",
            rec.spec.id, rec.spec.size_bytes, fct, s
        );
    }
    let q = queue.borrow();
    let avg = q.iter().map(|&(_, v)| v).sum::<f64>() / q.len() as f64;
    let peak = q.iter().map(|&(_, v)| v).fold(0.0, f64::max);
    println!(
        "\nbottleneck queue: avg {:.1} KB, peak {:.1} KB",
        avg / 1e3,
        peak / 1e3
    );
    println!("(PowerTCP's equilibrium queue is the aggregate additive increase β̂ — near zero)");
}
