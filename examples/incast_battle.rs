//! Incast battle: PowerTCP vs HPCC vs TIMELY absorbing 16:1 bursts (the
//! Figure 4 scenario) — expressed as a declarative [`ScenarioSpec`] and
//! executed by the parallel sweep runner, instead of hand-wiring hosts
//! and flows.
//!
//! ```sh
//! cargo run --release --example incast_battle
//! ```
//!
//! The same scenario is in the built-in library: `xp run incast-battle`.
//! To customize it, dump and edit the TOML: `xp show incast-battle`.

use dcn_scenarios::{run_sweep, Algo, IncastSpec, ScenarioSpec, TopologySpec};

fn main() {
    // 16 responders + requesters on a single-switch star: every burst
    // converges on one 25G downlink while background requests keep coming.
    let spec = ScenarioSpec::new(
        "incast-battle",
        TopologySpec::Star {
            hosts: 18,
            host_gbps: 25.0,
        },
    )
    .describe("16:1 incast bursts onto a 25G downlink (paper Figure 4 scenario)")
    .incast(IncastSpec {
        rate_per_sec: 500.0,
        request_bytes: 1_920_000, // 120 KB from each of 16 responders
        fan_in: 16,
        periodic: true,
    })
    .algos([Algo::PowerTcp, Algo::Hpcc, Algo::Timely])
    .seeds([42])
    .horizon_ms(4.0)
    .drain_ms(6.0);

    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let result = run_sweep(&spec, threads).expect("valid spec");

    println!("{}", result.table());
    println!(
        "{:<14} {:>13} {:>15} {:>17} {:>17} {:>6}",
        "protocol", "done/offered", "mean slowdown", "p99 buffer (KB)", "peak buffer (KB)", "drops"
    );
    for a in &result.aggregates {
        println!(
            "{:<14} {:>8}/{:<4} {:>15.2} {:>17.0} {:>17.0} {:>6}",
            a.algo_name,
            a.completed,
            a.offered,
            a.all.map_or(f64::NAN, |s| s.mean),
            a.buffer_p99.unwrap_or(0.0) / 1e3,
            a.buffer_max.unwrap_or(0.0) / 1e3,
            a.drops,
        );
    }
    println!(
        "\nExpected shape (paper Fig. 4): PowerTCP absorbs the bursts promptly \
         and keeps\nslowdowns low at a modest buffer footprint; HPCC holds the \
         queue near zero but\npays for its late, conservative reaction in \
         completion times; TIMELY lets the\nqueue grow furthest."
    );
}
