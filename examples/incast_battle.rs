//! Incast battle: PowerTCP vs HPCC vs TIMELY absorbing a 16:1 burst while
//! a long flow runs (the Figure 4 scenario, self-contained).
//!
//! ```sh
//! cargo run --release --example incast_battle
//! ```

use cc_baselines::{Hpcc, HpccConfig, Timely, TimelyConfig};
use powertcp::prelude::*;

#[derive(Clone, Copy, Debug, PartialEq)]
enum Which {
    Power,
    Hpcc,
    Timely,
}

fn run(which: Which) -> (f64, f64, f64) {
    let fan_in = 16;
    let metrics = MetricsHub::new_shared();
    let base_rtt = Tick::from_micros(8);
    let tcfg = TransportConfig {
        base_rtt,
        expected_flows: 8,
        ..TransportConfig::default()
    };
    let receiver = NodeId(1);
    let m2 = metrics.clone();
    let mut mk = move |id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        let make_cc = move |_f: FlowId, nic: Bandwidth| -> Box<dyn CongestionControl> {
            let ctx = tcfg.cc_context(nic);
            match which {
                Which::Power => Box::new(PowerTcp::new(PowerTcpConfig::default(), ctx)),
                Which::Hpcc => Box::new(Hpcc::new(HpccConfig::default(), ctx)),
                Which::Timely => Box::new(Timely::new(TimelyConfig::default(), ctx)),
            }
        };
        let mut host = TransportHost::new(tcfg, m2.clone(), Box::new(make_cc));
        if idx == 1 {
            // Long-running background flow.
            host.add_flow(FlowSpec {
                id: FlowId(1),
                src: id,
                dst: receiver,
                size_bytes: 20_000_000,
                start: Tick::ZERO,
            });
        } else if idx >= 2 {
            // The burst: everyone fires at t = 1 ms.
            host.add_flow(FlowSpec {
                id: FlowId(idx as u64),
                src: id,
                dst: receiver,
                size_bytes: 120_000,
                start: Tick::from_millis(1),
            });
        }
        Box::new(host)
    };
    let star = build_star(
        fan_in + 2,
        Bandwidth::gbps(25),
        Tick::from_micros(1),
        SwitchConfig::default(),
        &mut mk,
    );
    let sw = star.switch;
    let mut sim = Simulator::new(star.net);
    let qs = series();
    let ts = series();
    sim.add_tracer(Tick::from_micros(20), queue_tracer(sw, PortId(0), qs.clone()));
    sim.add_tracer(
        Tick::from_micros(20),
        throughput_tracer(sw, PortId(0), ts.clone()),
    );
    sim.run_until(Tick::from_millis(6));

    let peak_queue = qs.borrow().iter().map(|&(_, v)| v).fold(0.0, f64::max);
    // Throughput dip after the burst is absorbed (recovery window).
    let dip = ts
        .borrow()
        .iter()
        .filter(|(t, _)| *t >= Tick::from_micros(1500) && *t < Tick::from_millis(3))
        .map(|&(_, v)| v)
        .fold(f64::INFINITY, f64::min);
    // Mean queue in the final millisecond.
    let tail_q: Vec<f64> = qs
        .borrow()
        .iter()
        .filter(|(t, _)| *t >= Tick::from_millis(5))
        .map(|&(_, v)| v)
        .collect();
    let tail = tail_q.iter().sum::<f64>() / tail_q.len().max(1) as f64;
    (peak_queue, dip, tail)
}

fn main() {
    println!("16:1 incast onto a 25G downlink with a background long flow\n");
    println!(
        "{:<10} {:>16} {:>22} {:>18}",
        "protocol", "peak queue (KB)", "recovery min thr (Gbps)", "tail queue (KB)"
    );
    for (name, which) in [
        ("PowerTCP", Which::Power),
        ("HPCC", Which::Hpcc),
        ("TIMELY", Which::Timely),
    ] {
        let (peak, dip, tail) = run(which);
        println!(
            "{:<10} {:>16.0} {:>22.1} {:>18.1}",
            name,
            peak / 1e3,
            dip,
            tail / 1e3
        );
    }
    println!(
        "\nExpected shape (paper Fig. 4): PowerTCP absorbs the burst and keeps \
         throughput;\nHPCC loses throughput after reacting; TIMELY lets the queue grow."
    );
}
