//! Fluid-model phase portrait (the Figure 3 analysis) rendered as ASCII:
//! trajectories of (window, inflight) for the three control-law families.
//!
//! ```sh
//! cargo run --release --example fluid_phase
//! ```

use powertcp::fluid::{analytic_equilibrium, inflight, phase_trajectory, FluidParams, Law, State};

/// Render trajectories on a log-log grid of (window, inflight).
fn render(law: Law, p: &FluidParams) {
    const W: usize = 64;
    const H: usize = 20;
    let (lo, hi) = (3.5f64, 6.5f64); // log10 bytes: ~3 KB .. ~3 MB
    let mut grid = vec![vec![' '; W]; H];
    let to_cell = |w: f64, inf: f64| -> Option<(usize, usize)> {
        let x = (w.log10() - lo) / (hi - lo);
        let y = (inf.log10() - lo) / (hi - lo);
        if !(0.0..1.0).contains(&x) || !(0.0..1.0).contains(&y) {
            return None;
        }
        Some((
            ((1.0 - y) * (H - 1) as f64).round() as usize,
            (x * (W - 1) as f64).round() as usize,
        ))
    };
    // BDP line (inflight == BDP).
    if let Some((row, _)) = to_cell(p.bdp(), p.bdp()) {
        for c in grid[row].iter_mut() {
            *c = '·';
        }
    }
    let starts = [
        State {
            w: 12_500.0,
            q: 0.0,
        },
        State {
            w: 75_000.0,
            q: 250_000.0,
        },
        State {
            w: 500_000.0,
            q: 0.0,
        },
        State {
            w: 1_000_000.0,
            q: 500_000.0,
        },
    ];
    for s0 in starts {
        let t = phase_trajectory(law, p, s0);
        for &(w, inf) in &t.points {
            if let Some((r, c)) = to_cell(w, inf) {
                grid[r][c] = '*';
            }
        }
        if let Some((r, c)) = to_cell(s0.w, inflight(p, s0)) {
            grid[r][c] = 'o';
        }
        if let Some((r, c)) = to_cell(t.end.w, inflight(p, t.end)) {
            grid[r][c] = 'X';
        }
    }
    println!("\n== {} ==  (o = start, X = end, · = BDP line)", law.name());
    for row in grid {
        println!("  {}", row.into_iter().collect::<String>());
    }
}

fn main() {
    let p = FluidParams::paper_example();
    let eq = analytic_equilibrium(&p);
    println!(
        "100 Gbps bottleneck, τ = 20 µs, BDP = {:.0} KB; analytic equilibrium w = {:.0} KB, q = {:.0} KB",
        p.bdp() / 1e3,
        eq.w / 1e3,
        eq.q / 1e3
    );
    for law in [Law::QueueLength, Law::RttGradient, Law::Power] {
        render(law, &p);
    }
    println!(
        "\nExpected shape (paper Fig. 3): voltage law — one X but trajectories \
         dip below the BDP line;\ngradient law — multiple X endpoints; power law \
         — every start converges straight to one X."
    );
}
