//! Reconfigurable datacenter demo: PowerTCP riding a rotor-scheduled
//! optical circuit (the §5 case study, self-contained).
//!
//! ```sh
//! cargo run --release --example rdcn_circuit
//! ```
//!
//! Four hosts in rack 0 send to rack 1. Once per "week" the rotor switch
//! connects the two racks with a 100 G circuit for a 225 µs "day"; the
//! rest of the time traffic shares a 25 G packet path. Watch PowerTCP
//! discover and fill the circuit within an RTT of each day starting.

use powertcp::prelude::*;
use rdcn::{build_rdcn, CircuitAwareHost, RdcnConfig, RotorSchedule};

fn main() {
    let cfg = RdcnConfig {
        schedule: RotorSchedule {
            n_tors: 6,
            day: Tick::from_micros(225),
            night: Tick::from_micros(20),
        },
        hosts_per_tor: 4,
        ..RdcnConfig::default()
    };
    let schedule = cfg.schedule;
    let base_rtt = cfg.base_rtt();
    let circuit_bw = cfg.circuit_bw;
    let h = cfg.hosts_per_tor;
    let metrics = MetricsHub::new_shared();

    let m2 = metrics.clone();
    let mut mk = move |id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        let tcfg = TransportConfig {
            base_rtt,
            rto: Tick::from_micros(2000),
            expected_flows: 1,
            ..TransportConfig::default()
        };
        let make_cc = move |_f: FlowId, nic: Bandwidth| -> Box<dyn CongestionControl> {
            Box::new(PowerTcp::new(
                PowerTcpConfig::default(),
                tcfg.cc_context(nic),
            ))
        };
        let mut host = TransportHost::new(tcfg, m2.clone(), Box::new(make_cc));
        let rack = idx / h;
        let slot = idx % h;
        if rack == 0 {
            let dst = NodeId((2 + (1 + h) + 1 + slot) as u32);
            host.add_flow(FlowSpec {
                id: FlowId(idx as u64 + 1),
                src: id,
                dst,
                size_bytes: 50_000_000,
                start: Tick::ZERO,
            });
            Box::new(CircuitAwareHost::new(host, schedule, 0, 1, circuit_bw))
        } else {
            Box::new(host)
        }
    };
    let r = build_rdcn(cfg, &mut mk);
    let tor0 = r.tors[0];
    let gauge = r.voq_gauges[0].clone();
    let hpt = r.cfg.hosts_per_tor;

    let mut sim = Simulator::new(r.net);
    let thr = series();
    {
        let thr = thr.clone();
        let mut last: Option<(Tick, u64)> = None;
        sim.add_tracer(Tick::from_micros(25), move |net, now| {
            if let powertcp::sim::Node::Custom(c) = net.node(tor0) {
                let total = c.ports[hpt].tx_bytes + c.ports[hpt + 1].tx_bytes;
                if let Some((t0, b0)) = last {
                    let dt = now.saturating_sub(t0).as_secs_f64();
                    if dt > 0.0 {
                        thr.borrow_mut()
                            .push((now, (total - b0) as f64 * 8.0 / dt / 1e9));
                    }
                }
                last = Some((now, total));
            }
        });
    }
    let voq = series();
    {
        let voq = voq.clone();
        sim.add_tracer(Tick::from_micros(25), move |_net, now| {
            let v = gauge.borrow().get(1).copied().unwrap_or(0);
            voq.borrow_mut().push((now, v as f64));
        });
    }
    // Two weeks of the 6-ToR schedule.
    let horizon = Tick::from_ps(schedule.week().as_ps() * 2);
    sim.run_until(horizon);

    println!("rack-0 → rack-1 egress over two rotor weeks (day = circuit up):\n");
    println!(
        "{:>10} {:>12} {:>10} phase",
        "time (us)", "Gbps", "VOQ (KB)"
    );
    for (i, &(t, g)) in thr.borrow().iter().enumerate() {
        if i % 8 != 0 {
            continue;
        }
        let v = voq
            .borrow()
            .iter()
            .find(|(tv, _)| *tv >= t)
            .map(|&(_, v)| v)
            .unwrap_or(0.0);
        let up = schedule.circuit_up(0, 1, t);
        println!(
            "{:>10.0} {:>12.1} {:>10.1} {}",
            t.as_micros_f64(),
            g,
            v / 1e3,
            if up { "DAY  ████" } else { "night" }
        );
    }
    println!(
        "\nExpected shape (paper Fig. 8a): ~100 Gbps during the rack pair's day, \
         ~25 Gbps otherwise,\nwith the VOQ staying near zero — high circuit \
         utilization without prebuffering latency."
    );
}
