//! Fairness demo: four θ-PowerTCP flows joining a 25 G bottleneck at 1 ms
//! intervals (the Figure 5 scenario) — prints the per-flow rate matrix.
//!
//! ```sh
//! cargo run --release --example fairness_demo
//! ```

use powertcp::prelude::*;

fn main() {
    let metrics = MetricsHub::new_shared();
    let base_rtt = Tick::from_micros(8);
    let tcfg = TransportConfig {
        base_rtt,
        expected_flows: 4,
        ..TransportConfig::default()
    };
    let receiver = NodeId(1);
    let m2 = metrics.clone();
    let mut mk = move |id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        let make_cc = move |_f: FlowId, nic: Bandwidth| -> Box<dyn CongestionControl> {
            Box::new(ThetaPowerTcp::new(
                PowerTcpConfig::default(),
                tcfg.cc_context(nic),
            ))
        };
        let mut host = TransportHost::new(tcfg, m2.clone(), Box::new(make_cc));
        if idx >= 1 {
            host.add_flow(FlowSpec {
                id: FlowId(idx as u64),
                src: id,
                dst: receiver,
                size_bytes: 30_000_000,
                start: Tick::from_millis(idx as u64 - 1),
            });
        }
        Box::new(host)
    };
    let star = build_star(
        5,
        Bandwidth::gbps(25),
        Tick::from_micros(1),
        SwitchConfig::default(),
        &mut mk,
    );
    let senders: Vec<NodeId> = (2..=5).map(NodeId).collect();
    let mut sim = Simulator::new(star.net);
    let handles: Vec<_> = senders.iter().map(|_| series()).collect();
    for (s, h) in senders.iter().zip(&handles) {
        sim.add_tracer(
            Tick::from_micros(100),
            host_throughput_tracer(*s, h.clone()),
        );
    }
    sim.run_until(Tick::from_millis(6));

    println!("θ-PowerTCP fairness: flows join at t = 0, 1, 2, 3 ms\n");
    println!(
        "{:>10} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "time (ms)", "flow1", "flow2", "flow3", "flow4", "Jain"
    );
    let f0 = handles[0].borrow();
    for (i, &(t, _)) in f0.iter().enumerate() {
        if i % 5 != 0 {
            continue;
        }
        let rates: Vec<f64> = handles
            .iter()
            .map(|h| h.borrow().get(i).map(|&(_, v)| v).unwrap_or(0.0))
            .collect();
        let active: Vec<f64> = rates.iter().copied().filter(|&r| r > 0.05).collect();
        let jain = jain_index(&active).unwrap_or(1.0);
        println!(
            "{:>10.1} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.3}",
            t.as_millis_f64(),
            rates[0],
            rates[1],
            rates[2],
            rates[3],
            jain
        );
    }
    println!(
        "\nExpected shape (paper Fig. 5c): each join re-divides the bottleneck \
         evenly within\na few RTTs — 25 → 12.5 → 8.3 → 6.25 Gbps with Jain ≈ 1."
    );
}

use powertcp::sim::host_throughput_tracer;
