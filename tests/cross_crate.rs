//! Cross-crate integration tests: the paper's headline claims checked
//! end-to-end through the public API of the umbrella crate.

use powertcp::prelude::*;

/// A tiny shared harness: N senders → 1 receiver on a star, one algorithm.
fn star_incast_queue(
    make_cc: impl Fn(TransportConfig, Bandwidth) -> Box<dyn CongestionControl> + 'static,
    n_senders: usize,
    flow_bytes: u64,
) -> (f64, f64, SharedMetrics) {
    let metrics = MetricsHub::new_shared();
    let base_rtt = Tick::from_micros(8);
    let tcfg = TransportConfig {
        base_rtt,
        expected_flows: 8,
        ..TransportConfig::default()
    };
    let m2 = metrics.clone();
    let make_cc = std::rc::Rc::new(make_cc);
    let mut mk = move |id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        let mc = make_cc.clone();
        let mut host = TransportHost::new(tcfg, m2.clone(), Box::new(move |_f, nic| mc(tcfg, nic)));
        if idx >= 1 {
            host.add_flow(FlowSpec {
                id: FlowId(idx as u64),
                src: id,
                dst: NodeId(1),
                size_bytes: flow_bytes,
                start: Tick::ZERO,
            });
        }
        Box::new(host)
    };
    let star = build_star(
        n_senders + 1,
        Bandwidth::gbps(25),
        Tick::from_micros(1),
        SwitchConfig::default(),
        &mut mk,
    );
    let sw = star.switch;
    let mut sim = Simulator::new(star.net);
    let qs = series();
    sim.add_tracer(
        Tick::from_micros(10),
        queue_tracer(sw, PortId(0), qs.clone()),
    );
    sim.run_until(Tick::from_millis(8));
    let peak = qs.borrow().iter().map(|&(_, v)| v).fold(0.0, f64::max);
    // Steady-state window: [2ms, 3.5ms] — past the start-up transient,
    // before the flows drain (8 × 1.5 MB at 25 Gbps lasts ~3.8 ms).
    let q = qs.borrow();
    let win: Vec<f64> = q
        .iter()
        .filter(|(t, _)| *t >= Tick::from_millis(2) && *t < Tick::from_micros(3_500))
        .map(|&(_, v)| v)
        .collect();
    let steady_mean = win.iter().sum::<f64>() / win.len().max(1) as f64;
    (peak, steady_mean, metrics)
}

#[test]
fn powertcp_beats_timely_on_steady_state_queue() {
    // §2's thesis end-to-end: power-based CC controls the absolute queue;
    // gradient-based CC does not.
    let (_, p_steady, pm) = star_incast_queue(
        |tcfg, nic| {
            Box::new(PowerTcp::new(
                PowerTcpConfig::default(),
                tcfg.cc_context(nic),
            ))
        },
        8,
        1_500_000,
    );
    let (_, t_steady, tm) = star_incast_queue(
        |tcfg, nic| {
            Box::new(cc_baselines::Timely::new(
                cc_baselines::TimelyConfig::default(),
                tcfg.cc_context(nic),
            ))
        },
        8,
        1_500_000,
    );
    assert_eq!(pm.borrow().completion_ratio().0, 8);
    assert_eq!(tm.borrow().completion_ratio().0, 8);
    assert!(
        p_steady < t_steady * 0.8,
        "PowerTCP steady queue {p_steady:.0}B must undercut TIMELY {t_steady:.0}B"
    );
}

#[test]
fn theta_powertcp_needs_no_switch_support() {
    // θ-PowerTCP must work with INT disabled at every switch.
    let metrics = MetricsHub::new_shared();
    let base_rtt = Tick::from_micros(8);
    let tcfg = TransportConfig {
        base_rtt,
        expected_flows: 4,
        ..TransportConfig::default()
    };
    let m2 = metrics.clone();
    let mut mk = move |id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        let mut host = TransportHost::new(
            tcfg,
            m2.clone(),
            Box::new(move |_f, nic| -> Box<dyn CongestionControl> {
                Box::new(ThetaPowerTcp::new(
                    PowerTcpConfig::default(),
                    tcfg.cc_context(nic),
                ))
            }),
        );
        if idx >= 1 {
            host.add_flow(FlowSpec {
                id: FlowId(idx as u64),
                src: id,
                dst: NodeId(1),
                size_bytes: 400_000,
                start: Tick::ZERO,
            });
        }
        Box::new(host)
    };
    let star = build_star(
        5,
        Bandwidth::gbps(25),
        Tick::from_micros(1),
        SwitchConfig {
            int_enabled: false, // legacy switches
            ..SwitchConfig::default()
        },
        &mut mk,
    );
    let mut sim = Simulator::new(star.net);
    sim.run_until(Tick::from_millis(6));
    assert_eq!(metrics.borrow().completion_ratio(), (4, 4));
}

#[test]
fn powertcp_requires_int_and_holds_without_it() {
    // PowerTCP with INT disabled receives no power signal: the window
    // stays at the (line-rate) initial value — documented behaviour, and
    // flows still complete through pacing.
    let metrics = MetricsHub::new_shared();
    let base_rtt = Tick::from_micros(8);
    let tcfg = TransportConfig {
        base_rtt,
        ..TransportConfig::default()
    };
    let m2 = metrics.clone();
    let mut mk = move |id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        let mut host = TransportHost::new(
            tcfg,
            m2.clone(),
            Box::new(move |_f, nic| -> Box<dyn CongestionControl> {
                Box::new(PowerTcp::new(
                    PowerTcpConfig::default(),
                    tcfg.cc_context(nic),
                ))
            }),
        );
        if idx == 1 {
            host.add_flow(FlowSpec {
                id: FlowId(1),
                src: id,
                dst: NodeId(1),
                size_bytes: 300_000,
                start: Tick::ZERO,
            });
        }
        Box::new(host)
    };
    let star = build_star(
        3,
        Bandwidth::gbps(25),
        Tick::from_micros(1),
        SwitchConfig {
            int_enabled: false,
            ..SwitchConfig::default()
        },
        &mut mk,
    );
    let mut sim = Simulator::new(star.net);
    sim.run_until(Tick::from_millis(5));
    assert_eq!(metrics.borrow().completion_ratio(), (1, 1));
}

#[test]
fn fluid_and_packet_models_agree_on_equilibrium() {
    // The fluid crate predicts w_e = bτ + β̂, q_e = β̂ for the aggregate;
    // the packet simulation must land near it. One long PowerTCP flow on
    // a dumbbell: β̂ = HostBw·τ/N with N = expected_flows.
    let metrics = MetricsHub::new_shared();
    let base_rtt = Tick::from_micros(12);
    let tcfg = TransportConfig {
        base_rtt,
        expected_flows: 2,
        ..TransportConfig::default()
    };
    let m2 = metrics.clone();
    let mut mk = move |_id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        let mut host = TransportHost::new(
            tcfg,
            m2.clone(),
            Box::new(move |_f, nic| -> Box<dyn CongestionControl> {
                Box::new(PowerTcp::new(
                    PowerTcpConfig::default(),
                    tcfg.cc_context(nic),
                ))
            }),
        );
        if idx == 0 {
            host.add_flow(FlowSpec {
                id: FlowId(1),
                src: NodeId(2),
                dst: NodeId(4),
                size_bytes: 40_000_000,
                start: Tick::ZERO,
            });
        }
        Box::new(host)
    };
    // Bottleneck at half the host rate: the queue must form at the
    // switch (with bottleneck == line rate it would sit in the sender's
    // NIC instead and the switch queue would rightly be zero).
    let d = build_dumbbell(
        DumbbellConfig {
            bottleneck_bw: Bandwidth::from_bps(12_500_000_000),
            ..DumbbellConfig::default()
        },
        &mut mk,
    );
    let (sw, port) = (d.left, d.bottleneck_port);
    let mut sim = Simulator::new(d.net);
    let qs = series();
    sim.add_tracer(Tick::from_micros(20), queue_tracer(sw, port, qs.clone()));
    sim.run_until(Tick::from_millis(8));
    // Steady state: sample the second half.
    let q = qs.borrow();
    let half = q.len() / 2;
    let mean_q = q[half..].iter().map(|&(_, v)| v).sum::<f64>() / (q.len() - half) as f64;
    // β̂ = one flow × HostBw·τ/2 = 25G·12us/8/2 = 18750 B.
    let beta_hat = Bandwidth::gbps(25).bdp_bytes(base_rtt) / 2.0;
    assert!(
        (mean_q - beta_hat).abs() < beta_hat * 0.6 + 3_000.0,
        "steady queue {mean_q:.0}B should approximate β̂ = {beta_hat:.0}B"
    );
}

#[test]
fn workload_generator_drives_fat_tree_experiment() {
    // End-to-end: workloads → fat-tree → transport → stats.
    let cfg = FatTreeConfig::small();
    let hosts = (0..cfg.num_hosts())
        .map(|i| cfg.host_node_id(i))
        .collect::<Vec<_>>();
    let map = HostMap {
        hosts: hosts.clone(),
        rack_of: (0..cfg.num_hosts())
            .map(|i| i / cfg.hosts_per_tor)
            .collect(),
    };
    let flows = poisson_flows(
        &PoissonConfig {
            load: 0.3,
            fabric_uplink_capacity: Bandwidth::gbps(100),
            sizes: SizeCdf::websearch(),
            horizon: Tick::from_millis(3),
            inter_rack_only: true,
            seed: 5,
            first_flow_id: 1,
        },
        &map,
    );
    assert!(!flows.is_empty());
    let mut per_host: Vec<Vec<FlowSpec>> = vec![Vec::new(); cfg.num_hosts()];
    for f in &flows {
        per_host[f.src.index() - cfg.num_switches()].push(*f);
    }
    let metrics = MetricsHub::new_shared();
    let base_rtt = cfg.max_base_rtt();
    let tcfg = TransportConfig {
        base_rtt,
        rto: base_rtt * 10,
        ..TransportConfig::default()
    };
    let m2 = metrics.clone();
    let mut mk = move |_id: NodeId, idx: usize| -> Box<dyn Endpoint> {
        let mut h = TransportHost::new(
            tcfg,
            m2.clone(),
            Box::new(move |_f, nic| -> Box<dyn CongestionControl> {
                Box::new(PowerTcp::new(
                    PowerTcpConfig::default(),
                    tcfg.cc_context(nic),
                ))
            }),
        );
        for f in &per_host[idx] {
            h.add_flow(*f);
        }
        Box::new(h)
    };
    let ft = build_fat_tree(cfg, &mut mk);
    let mut sim = Simulator::new(ft.net);
    sim.run_until(Tick::from_millis(12));
    let m = metrics.borrow();
    let (done, total) = m.completion_ratio();
    assert!(
        done as f64 >= 0.9 * total as f64,
        "fat-tree websearch run must mostly complete: {done}/{total}"
    );
    // Slowdowns are computable and sane.
    let slowdowns: Vec<f64> = m
        .records()
        .filter_map(|r| {
            r.fct()
                .map(|f| slowdown(f, r.spec.size_bytes, base_rtt, Bandwidth::gbps(25)))
        })
        .collect();
    let s = Summary::of(&slowdowns).expect("has samples");
    assert!(s.p50 >= 1.0 && s.p50 < 20.0, "p50 slowdown {:.2}", s.p50);
}

#[test]
fn deterministic_across_full_public_api() {
    let run = || {
        let (peak, tail, m) = star_incast_queue(
            |tcfg, nic| {
                Box::new(PowerTcp::new(
                    PowerTcpConfig::default(),
                    tcfg.cc_context(nic),
                ))
            },
            6,
            700_000,
        );
        let mut fcts: Vec<(u64, Option<Tick>)> = m
            .borrow()
            .records()
            .map(|r| (r.spec.id.0, r.completed))
            .collect();
        fcts.sort();
        (peak.to_bits(), tail.to_bits(), fcts)
    };
    assert_eq!(run(), run());
}
