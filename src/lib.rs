//! # powertcp
//!
//! Umbrella crate for the PowerTCP (NSDI 2022) reproduction: re-exports
//! every workspace crate and offers a [`prelude`] for examples and
//! experiments.
//!
//! The system is organized as (see `DESIGN.md` at the repository root):
//!
//! * [`core`] (`powertcp-core`) — the PowerTCP and θ-PowerTCP control laws,
//!   INT types, and the congestion-control trait;
//! * [`sim`] (`dcn-sim`) — the deterministic packet-level datacenter
//!   simulator (switches with Dynamic Thresholds, ECN, PFC, INT; fat-tree
//!   topologies);
//! * [`transport`] (`dcn-transport`) — RDMA-style windowed transport and
//!   HOMA;
//! * [`baselines`] (`cc-baselines`) — HPCC, DCQCN, TIMELY, Swift, DCTCP,
//!   NewReno, reTCP;
//! * [`workloads`] (`dcn-workloads`) — websearch sizes, Poisson load,
//!   incast;
//! * [`rdcn`] — reconfigurable-DCN substrate (circuit switch, VOQ ToRs,
//!   prebuffering);
//! * [`fluid`] (`fluid-model`) — the §2/Appendix-A fluid-model analysis;
//! * [`stats`] (`dcn-stats`) — percentiles, CDFs, slowdowns, fairness;
//! * [`telemetry`] (`dcn-telemetry`) — time-series probe recorder, ring
//!   buffers, reducers, and deterministic trace export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use cc_baselines as baselines;
pub use dcn_sim as sim;
pub use dcn_stats as stats;
pub use dcn_telemetry as telemetry;
pub use dcn_transport as transport;
pub use dcn_workloads as workloads;
pub use fluid_model as fluid;
pub use powertcp_core as core;
pub use rdcn;

/// Common imports for examples and experiments.
pub mod prelude {
    pub use cc_baselines::{
        Dcqcn, DcqcnConfig, Dctcp, DctcpConfig, Hpcc, HpccConfig, NewReno, NewRenoConfig, ReTcp,
        ReTcpConfig, Swift, SwiftConfig, Timely, TimelyConfig,
    };
    pub use dcn_sim::{
        build_dumbbell, build_fat_tree, build_star, queue_tracer, series, throughput_tracer,
        Dumbbell, DumbbellConfig, EcnConfig, Endpoint, EndpointCtx, FatTree, FatTreeConfig, FlowId,
        Network, NodeId, Packet, PacketKind, PfcConfig, PortId, Simulator, Star, SwitchConfig,
    };
    pub use dcn_stats::{ideal_fct, jain_index, percentile, slowdown, Cdf, Summary};
    pub use dcn_transport::{
        FlowSpec, HomaConfig, HomaHost, MetricsHub, SharedMetrics, TransportConfig, TransportHost,
    };
    pub use dcn_workloads::{
        incast_flows, poisson_flows, size_class, HostMap, IncastConfig, PoissonConfig, SizeCdf,
        SizeClass,
    };
    pub use powertcp_core::{
        AckInfo, Bandwidth, CcContext, CongestionControl, IntHeader, IntHopMetadata, NetSignal,
        PowerEstimator, PowerTcp, PowerTcpConfig, ThetaPowerTcp, Tick,
    };
}
